module K = Xc_os.Kernel

let abom_coverage_auto = 0.446
let abom_coverage_manual = 0.922

let coverage ~offline_patched =
  if offline_patched then abom_coverage_manual else abom_coverage_auto

let read_query ~offline_patched =
  Recipe.make ~name:"mysql-read" ~user_ns:21_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 180;
        K.Cheap Getpid (* futex-ish bookkeeping stand-in *);
        K.File_read 4096 (* buffer-pool page, cache-warm *);
        K.Socket_send 420;
      ]
    ~request_bytes:180 ~response_bytes:420 ~irqs:2
    ~abom_coverage:(coverage ~offline_patched) ()

let write_query ~offline_patched =
  Recipe.make ~name:"mysql-write" ~user_ns:26_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 220;
        K.Cheap Getpid;
        K.File_write 4096 (* page dirty + redo log append *);
        K.File_write 512;
        K.Socket_send 60;
      ]
    ~request_bytes:220 ~response_bytes:60 ~irqs:2
    ~abom_coverage:(coverage ~offline_patched) ()

let mixed_query ~offline_patched =
  let r = read_query ~offline_patched and w = write_query ~offline_patched in
  Recipe.make ~name:"mysql-mixed"
    ~user_ns:((r.Recipe.user_ns +. w.Recipe.user_ns) /. 2.)
    ~ops:r.Recipe.ops (* read skeleton; user_ns carries the write cost *)
    ~request_bytes:200 ~response_bytes:240 ~irqs:2
    ~abom_coverage:(coverage ~offline_patched) ()

let server ?(offline_patched = false) ~cores platform =
  let base = Recipe.service_ns platform (mixed_query ~offline_patched) in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min 4 cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.15 in
        base *. Float.max 0.4 jitter);
    overhead_ns = 0.;
  }
