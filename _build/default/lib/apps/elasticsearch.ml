module K = Xc_os.Kernel

let abom_coverage = 0.988

let search_request =
  Recipe.make ~name:"es-search" ~user_ns:120_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 420;
        K.Cheap Getpid;
        K.File_read 16384 (* segment data, page-cache warm *);
        K.File_read 16384;
        K.Socket_send 2600;
      ]
    ~request_bytes:420 ~response_bytes:2600 ~irqs:3 ~abom_coverage ()

let index_request =
  Recipe.make ~name:"es-index" ~user_ns:160_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 1800;
        K.Cheap Getpid;
        K.File_write 2048 (* translog append *);
        K.File_write 0 (* fsync-class barrier *);
        K.Socket_send 180;
      ]
    ~request_bytes:1800 ~response_bytes:180 ~irqs:3 ~abom_coverage ()

let mixed_request =
  Recipe.make ~name:"es-mixed"
    ~user_ns:((0.8 *. search_request.Recipe.user_ns) +. (0.2 *. index_request.Recipe.user_ns))
    ~ops:(search_request.Recipe.ops @ [ K.File_write 410 ])
    ~request_bytes:700 ~response_bytes:2100 ~irqs:3 ~abom_coverage ()

let server ~cores platform =
  let base = Recipe.service_ns platform mixed_request in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min 4 cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.25 in
        base *. Float.max 0.25 jitter);
    overhead_ns = 0.;
  }
