(** The MySQL model.

    MySQL is the paper's ABOM outlier: its hot syscalls go through
    libpthread's {i cancellable} wrappers, which the online patcher cannot
    recognise — 44.6% automatic coverage, 92.2% after offline-patching two
    libpthread locations (Table 1, Section 5.2). *)

val abom_coverage_auto : float
val abom_coverage_manual : float

val read_query : offline_patched:bool -> Recipe.t
val write_query : offline_patched:bool -> Recipe.t

val mixed_query : offline_patched:bool -> Recipe.t
(** Equal read/write probability (the Figure 6c page). *)

val server :
  ?offline_patched:bool ->
  cores:int ->
  Xc_platforms.Platform.t ->
  Xc_platforms.Closed_loop.server
