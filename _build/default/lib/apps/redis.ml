module K = Xc_os.Kernel

let abom_coverage = 1.0

let request =
  Recipe.make ~name:"redis-mixed" ~user_ns:3_600.
    ~ops:[ K.Epoll; K.Socket_recv 64; K.Socket_send 256 ]
    ~request_bytes:64 ~response_bytes:256 ~irqs:3 ~abom_coverage ()

let server ~cores:_ platform =
  let base = Recipe.service_ns platform request in
  {
    Xc_platforms.Closed_loop.units = 1;
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.10 in
        base *. Float.max 0.5 jitter);
    overhead_ns = 0.;
  }
