module K = Xc_os.Kernel

let abom_coverage = 0.998

(* One pgbench TPC-B-ish transaction: 3 updates, 1 select, 1 insert,
   WAL flush at commit. *)
let transaction =
  Recipe.make ~name:"pgbench-tx" ~user_ns:55_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 300;
        K.File_read 8192;
        K.File_write 8192;
        K.File_read 8192;
        K.File_write 8192;
        K.File_read 8192;
        K.File_write 8192;
        K.File_write 600 (* WAL record *);
        K.File_write 0 (* fsync-class commit, modelled as write barrier *);
        K.Socket_send 150;
      ]
    ~request_bytes:300 ~response_bytes:150 ~irqs:2 ~abom_coverage ()

let connection_setup_ns platform =
  Xc_platforms.Platform.fork_ns platform
  +. Xc_platforms.Platform.syscall_ns ~coverage:abom_coverage platform K.Accept_op
  +. 60_000. (* auth handshake and catalogue warm-up *)

let server ?(backends = 8) ~cores platform =
  let base = Recipe.service_ns platform transaction in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min backends cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.2 in
        base *. Float.max 0.3 jitter);
    overhead_ns = 0.;
  }
