module K = Xc_os.Kernel

let abom_coverage = 1.0

let read_request =
  Recipe.make ~name:"mongo-read" ~user_ns:14_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 240;
        K.Cheap Getpid (* clock for snapshot *);
        K.File_read 4096 (* cache-warm page via mmap fault path *);
        K.Socket_send 1500;
      ]
    ~request_bytes:240 ~response_bytes:1500 ~irqs:3 ~abom_coverage ()

let update_request =
  Recipe.make ~name:"mongo-update" ~user_ns:19_000.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 900;
        K.Cheap Getpid;
        K.File_read 4096;
        K.File_write 4096 (* dirty page *);
        K.File_write 350 (* journal record *);
        K.Socket_send 120;
      ]
    ~request_bytes:900 ~response_bytes:120 ~irqs:3 ~abom_coverage ()

let ycsb_a =
  Recipe.make ~name:"mongo-ycsb-a"
    ~user_ns:((read_request.Recipe.user_ns +. update_request.Recipe.user_ns) /. 2.)
    ~ops:(read_request.Recipe.ops @ [ K.File_write 350 ])
    ~request_bytes:570 ~response_bytes:810 ~irqs:3 ~abom_coverage ()

let server ~cores platform =
  let base = Recipe.service_ns platform ycsb_a in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min 4 cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.18 in
        base *. Float.max 0.3 jitter);
    overhead_ns = 0.;
  }
