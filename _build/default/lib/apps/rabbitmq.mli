(** The RabbitMQ model (Table 1: Erlang, rabbitmq-perf-test, 98.6%).

    A message broker: each published message is routed and delivered to a
    consumer — two socket legs per message — with optional persistence.
    The Erlang VM's schedulers do more user-space work per message and a
    small fraction of its syscall sites sit behind the runtime's own
    wrappers where ABOM's patterns do not apply (the 1.4% residue). *)

val abom_coverage : float
val publish_transient : Recipe.t
val publish_persistent : Recipe.t

val server :
  cores:int -> Xc_platforms.Platform.t -> Xc_platforms.Closed_loop.server
