(** The Kernel Compilation workload (Table 1's "Linux kernel with tiny
    config").

    The counterpoint workload: compilation is fork/exec/process-churn
    heavy — exactly where X-Containers pay the PV page-table tax
    (Section 5.4) — while its syscalls are mostly file I/O that ABOM
    converts at 95.3%.  The build model spawns one compiler process per
    translation unit through the platform's fork/exec, with file reads
    and writes per unit. *)

val abom_coverage : float

val per_unit_ns : Xc_platforms.Platform.t -> float
(** Cost of compiling one translation unit: fork + exec + headers read +
    object write + compiler CPU. *)

val build_ns : ?units:int -> ?jobs:int -> Xc_platforms.Platform.t -> float
(** Wall time of a [make -j jobs] build of [units] translation units
    (default: 600 units — a tiny-config kernel — on 8 jobs). *)

val relative_to_docker : Xc_platforms.Platform.t -> float
(** Build throughput relative to patched Docker (the Figure 5 Execl and
    Process Creation story, composed into one realistic workload). *)
