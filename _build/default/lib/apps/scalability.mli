(** The Figure 8 scalability experiment.

    Up to 400 NGINX+PHP-FPM containers (one worker each, 4 processes per
    container counting masters) on one 16-core machine, each driven by a
    dedicated wrk thread with 5 connections.  The shape of the figure is
    a scheduling story (Section 5.6):

    - Docker's host kernel schedules 4N processes on a flat runqueue:
      cheap switches at small N, but bookkeeping and cache pollution grow
      with 4N;
    - the X-Kernel schedules N single-vCPU domains, and each X-LibOS
      schedules its own 4 processes: both levels stay small — the
      hierarchy wins 18% at N = 400;
    - Xen PV/HVM VMs behave like X-Containers at the hypervisor level but
      pay more per guest switch, need 256-512 MB each, and simply cannot
      boot beyond ~250 / ~200 instances on a 96 GB machine. *)

type point = {
  containers : int;
  throughput_rps : float;
  booted : bool;  (** false when the platform cannot start this many *)
  service_ns : float;  (** per-request service time incl. overhead *)
}

val host_cores : int
val host_memory_mb : int
val connections_per_container : int

val run : Xc_platforms.Config.runtime -> containers:int -> point

val sweep : Xc_platforms.Config.runtime -> int list -> point list

val default_counts : int list
(** The x-axis of Figure 8. *)
