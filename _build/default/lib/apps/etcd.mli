(** The etcd model (Table 1: Go, etcd-benchmark, 100% ABOM coverage).

    A Raft-replicated key-value store: every write pays an fsync-class
    WAL append and (in a cluster) peer round trips; reads are served from
    the in-memory index.  Being a Go program, its syscall sites compile
    to the stack-loaded pattern ABOM handles with the dynamic vsyscall
    entry — coverage still reaches 100%. *)

val abom_coverage : float
val get_request : Recipe.t
val put_request : ?peers:int -> unit -> Recipe.t

val mixed_request : Recipe.t
(** etcd-benchmark's default mix (3:1 read:write, single node). *)

val server :
  cores:int -> Xc_platforms.Platform.t -> Xc_platforms.Closed_loop.server
