module K = Xc_os.Kernel

let page_user_ns = 58_000.

let db_roundtrip_remote_ops =
  [ K.Socket_send 180; K.Epoll; K.Socket_recv 420 ]

(* Unix-domain socket to a co-located MySQL: same syscall count but the
   bytes never cross the network stack; the kernel copies buffers
   directly (we model it as pipe traffic). *)
let db_roundtrip_local_ops = [ K.Pipe_write 180; K.Epoll; K.Pipe_read 420 ]

let cgi_request ~queries =
  let base_ops =
    [
      K.Accept_op;
      K.Socket_recv 300;
      K.Stat_op;
      K.Open_op;
      K.File_read 2048 (* script source, cache-warm *);
      K.Socket_send 1800;
      K.Cheap Close;
    ]
  in
  let db_ops = List.concat (List.init queries (fun _ -> db_roundtrip_remote_ops)) in
  Recipe.make ~name:"php-cgi" ~user_ns:page_user_ns ~ops:(base_ops @ db_ops)
    ~request_bytes:300 ~response_bytes:1800 ~irqs:(3 + queries)
    ~abom_coverage:0.99 ()

let fpm_request =
  Recipe.make ~name:"php-fpm"
    ~user_ns:(page_user_ns +. 9_000. (* NGINX side + FastCGI marshalling *))
    ~ops:
      [
        (* NGINX front half *)
        K.Epoll;
        K.Socket_recv 240;
        (* FastCGI to the FPM worker over a Unix socket *)
        K.Pipe_write 600;
        K.Epoll;
        (* FPM worker *)
        K.Pipe_read 600;
        K.Stat_op;
        K.File_read 2048;
        K.Pipe_write 2000;
        (* NGINX back half *)
        K.Pipe_read 2000;
        K.Socket_send 1900;
        K.File_write 120;
      ]
    ~request_bytes:240 ~response_bytes:1900 ~process_hops:2 ~irqs:3
    ~abom_coverage:0.95 ()
