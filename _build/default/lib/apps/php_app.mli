(** PHP server models.

    Two variants appear in the paper: the PHP built-in CGI web server
    backed by MySQL (Figure 6c) and PHP-FPM behind NGINX (Figures 8, 9
    use webdevops/php-nginx with one FPM worker). *)

val page_user_ns : float
(** Interpreter work for the benchmark page. *)

val cgi_request : queries:int -> Recipe.t
(** A request to the built-in server that issues [queries] database
    round trips over TCP (the Figure 6c page issues one, read or write
    with equal probability). *)

val fpm_request : Recipe.t
(** NGINX -> PHP-FPM over FastCGI: the request hops to the FPM worker
    process and back (two intra-container process switches). *)

val db_roundtrip_local_ops : Xc_os.Kernel.op list
(** Socket ops PHP performs per query when the database is in the {i same}
    container (Unix socket): the Dedicated&Merged case of Figure 7. *)

val db_roundtrip_remote_ops : Xc_os.Kernel.op list
(** Socket ops per query against a remote database container. *)
