(** The NGINX web-server model.

    NGINX is event-driven: one worker process serves many connections
    through an epoll loop.  The paper drives it with Apache [ab] in
    Figure 3 (no keep-alive: full connection per request) and with [wrk]
    in Figures 6, 8 and 9 (keep-alive).  ABOM converts 92.3% of its
    dynamic syscalls (Table 1). *)

val abom_coverage : float

val static_request_ab : Recipe.t
(** One static-page request over a fresh connection (accept + teardown),
    as the [ab] benchmark of Figure 3 generates. *)

val static_request_wrk : Recipe.t
(** One keep-alive request, as [wrk] generates (Figures 6, 9). *)

val workers_default : int

val server :
  ?workers:int ->
  ?keepalive:bool ->
  cores:int ->
  Xc_platforms.Platform.t ->
  Xc_platforms.Closed_loop.server
(** A closed-loop server description: service units =
    min(workers, cores) since each worker is single-threaded. *)
