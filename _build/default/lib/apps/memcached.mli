(** The memcached model.

    memtier_benchmark drives it with a 1:10 SET:GET ratio (Section 5.3)
    over many keep-alive connections; memcached answers from its slab
    cache with a handful of syscalls per operation, which is why it shows
    the paper's largest macrobenchmark gains (1.34x-2.08x over Docker).
    ABOM coverage is 100% (Table 1). *)

val abom_coverage : float
val get_request : Recipe.t
val set_request : Recipe.t

val mixed_request : Recipe.t
(** The 1:10 SET:GET mix as a single average recipe. *)

val server :
  ?threads:int -> cores:int -> Xc_platforms.Platform.t ->
  Xc_platforms.Closed_loop.server
