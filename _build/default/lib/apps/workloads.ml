type t = {
  name : string;
  tool : string;
  connections : int;
  keepalive : bool;
  set_get_ratio : (int * int) option;
  notes : string;
}

let ab =
  {
    name = "ab";
    tool = "Apache ab";
    connections = 100;
    keepalive = false;
    set_get_ratio = None;
    notes = "full TCP connection per request; drives Figure 3 NGINX";
  }

let wrk =
  {
    name = "wrk";
    tool = "wrk";
    connections = 64;
    keepalive = true;
    set_get_ratio = None;
    notes = "keep-alive; drives Figures 6 and 9";
  }

let wrk_scalability =
  {
    name = "wrk-scalability";
    tool = "wrk";
    connections = 5;
    keepalive = true;
    set_get_ratio = None;
    notes = "one thread, 5 connections per container (Figure 8)";
  }

let memtier =
  {
    name = "memtier";
    tool = "memtier_benchmark";
    connections = 200;
    keepalive = true;
    set_get_ratio = Some (1, 10);
    notes = "1:10 SET:GET (Section 5.3); drives memcached";
  }

let redis_bench =
  {
    name = "redis-benchmark";
    tool = "redis-benchmark";
    connections = 50;
    keepalive = true;
    set_get_ratio = None;
    notes = "default command mix; drives Redis";
  }

let all = [ ab; wrk; wrk_scalability; memtier; redis_bench ]
let find name = List.find_opt (fun w -> w.name = name) all

let closed_loop_config ?(duration_ns = 2e9) ?(seed = 42) w =
  {
    Xc_platforms.Closed_loop.default_config with
    connections = w.connections;
    duration_ns;
    seed;
  }
