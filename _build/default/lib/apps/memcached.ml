module K = Xc_os.Kernel

let abom_coverage = 1.0

(* One GET under memtier's high connection count: epoll churn, command
   read, hash lookup, sendmsg, speculative drains, epoll_ctl rearms and
   clock reads — memcached is the most syscall-dense of the three
   macrobenchmarks, and its tiny packets make the per-packet interrupt
   path a large share of the total. *)
let get_request =
  Recipe.make ~name:"memcached-get" ~user_ns:1_400.
    ~ops:
      [
        K.Epoll;
        K.Cheap Dup (* epoll_ctl rearm *);
        K.Socket_recv 96;
        K.Socket_recv 0 (* drain returning EAGAIN *);
        K.Cheap Getpid (* clock_gettime *);
        K.Socket_send 1124;
        K.Cheap Dup;
        K.Epoll;
        K.Cheap Getpid;
        K.Socket_recv 0;
        K.Socket_send 0 (* short write retry *);
        K.Cheap Umask (* stats counters timer *);
        K.Epoll;
        K.Cheap Getuid;
      ]
    ~request_bytes:96 ~response_bytes:1124 ~irqs:5 ~abom_coverage ()

let set_request =
  Recipe.make ~name:"memcached-set" ~user_ns:1_900.
    ~ops:
      [
        K.Epoll;
        K.Cheap Dup;
        K.Socket_recv 1160;
        K.Socket_recv 0;
        K.Cheap Getpid;
        K.Socket_send 40;
        K.Cheap Dup;
        K.Epoll;
        K.Cheap Getpid;
        K.Socket_recv 0;
        K.Socket_send 0;
        K.Cheap Umask;
        K.Epoll;
        K.Cheap Getuid;
      ]
    ~request_bytes:1160 ~response_bytes:40 ~irqs:5 ~abom_coverage ()

(* 1:10 SET:GET. *)
let mixed_request =
  let g = 10. /. 11. and s = 1. /. 11. in
  Recipe.make ~name:"memcached-mixed"
    ~user_ns:((g *. get_request.Recipe.user_ns) +. (s *. set_request.Recipe.user_ns))
    ~ops:get_request.Recipe.ops (* same op skeleton *)
    ~request_bytes:
      (int_of_float
         ((g *. float_of_int get_request.Recipe.request_bytes)
         +. (s *. float_of_int set_request.Recipe.request_bytes)))
    ~response_bytes:
      (int_of_float
         ((g *. float_of_int get_request.Recipe.response_bytes)
         +. (s *. float_of_int set_request.Recipe.response_bytes)))
    ~irqs:5 ~abom_coverage ()

let server ?(threads = 4) ~cores platform =
  let base = Recipe.service_ns platform mixed_request in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min threads cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.10 in
        base *. Float.max 0.5 jitter);
    overhead_ns = 0.;
  }
