(** The Redis model.

    redis-benchmark drives a single-threaded event loop; commands do more
    user-space work per operation than memcached (object encoding, RESP
    protocol) and use fewer syscalls, so the platforms' syscall-path
    differences compress — the paper finds X-Containers roughly on par
    with Docker here (Figure 3, "comparable ... with stronger
    isolation").  ABOM coverage is 100% (Table 1). *)

val abom_coverage : float
val request : Recipe.t

val server : cores:int -> Xc_platforms.Platform.t -> Xc_platforms.Closed_loop.server
(** Single-threaded: one service unit regardless of cores. *)
