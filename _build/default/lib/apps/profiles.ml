module Builder = Xc_isa.Builder
module Machine = Xc_isa.Machine

type profile = {
  name : string;
  description : string;
  implementation : string;
  benchmark : string;
  sites : (Builder.style * int * float) list;
  paper_reduction : float;
  paper_manual_reduction : float option;
}

(* Helpers to lay out site lists.  Syscall numbers are real x86-64 ones,
   cycling over a plausible working set per app. *)
let spread style weight sysnos =
  let w = weight /. float_of_int (List.length sysnos) in
  List.map (fun nr -> (style, nr, w)) sysnos

let rw = [ 0; 1 ] (* read, write *)
let net = [ 45; 44; 232; 233 ] (* recvfrom, sendto, epoll_wait, epoll_ctl *)
let file = [ 2; 3; 5; 8 ] (* open, close, fstat, lseek *)
let misc = [ 39; 102; 95; 32 ] (* getpid, getuid, umask, dup *)

let c_app ?(wide = 0.3) weight_patchable =
  (* A C application: glibc wrappers, some compiled to the 7-byte form,
     some to the 9-byte form. *)
  spread Builder.Glibc_small (weight_patchable *. (1. -. wide)) (rw @ net)
  @ spread Builder.Glibc_wide (weight_patchable *. wide) (file @ misc)

let go_app weight_patchable =
  spread Builder.Go_stack weight_patchable (rw @ net @ file)

let unpatchable weight = spread Builder.Exotic weight [ 0; 1 ]

let all =
  [
    {
      name = "memcached";
      description = "Memory caching system";
      implementation = "C/C++";
      benchmark = "memtier_benchmark";
      sites = c_app 1.0;
      paper_reduction = 1.00;
      paper_manual_reduction = None;
    };
    {
      name = "Redis";
      description = "In-memory database";
      implementation = "C/C++";
      benchmark = "redis-benchmark";
      sites = c_app 1.0;
      paper_reduction = 1.00;
      paper_manual_reduction = None;
    };
    {
      name = "etcd";
      description = "Key-value store";
      implementation = "Go";
      benchmark = "etcd-benchmark";
      sites = go_app 1.0;
      paper_reduction = 1.00;
      paper_manual_reduction = None;
    };
    {
      name = "MongoDB";
      description = "NoSQL Database";
      implementation = "C/C++";
      benchmark = "YCSB";
      sites = c_app 1.0;
      paper_reduction = 1.00;
      paper_manual_reduction = None;
    };
    {
      name = "InfluxDB";
      description = "Time series database";
      implementation = "Go";
      benchmark = "influxdb-comparisons";
      sites = go_app 1.0;
      paper_reduction = 1.00;
      paper_manual_reduction = None;
    };
    {
      name = "Postgres";
      description = "Database";
      implementation = "C/C++";
      benchmark = "pgbench";
      sites = c_app 0.998 @ unpatchable 0.002;
      paper_reduction = 0.998;
      paper_manual_reduction = None;
    };
    {
      name = "Fluentd";
      description = "Data collector";
      implementation = "Ruby";
      benchmark = "fluentd-benchmark";
      sites = c_app 0.994 @ unpatchable 0.006;
      paper_reduction = 0.994;
      paper_manual_reduction = None;
    };
    {
      name = "Elasticsearch";
      description = "Search engine";
      implementation = "JAVA";
      benchmark = "elasticsearch-stress-test";
      sites = c_app 0.988 @ unpatchable 0.012;
      paper_reduction = 0.988;
      paper_manual_reduction = None;
    };
    {
      name = "RabbitMQ";
      description = "Message broker";
      implementation = "Erlang";
      benchmark = "rabbitmq-perf-test";
      sites = c_app 0.986 @ unpatchable 0.014;
      paper_reduction = 0.986;
      paper_manual_reduction = None;
    };
    {
      name = "Kernel Compilation";
      description = "Code Compilation";
      implementation = "Various tools";
      benchmark = "Linux kernel with tiny config";
      sites = c_app 0.953 @ unpatchable 0.047;
      paper_reduction = 0.953;
      paper_manual_reduction = None;
    };
    {
      name = "Nginx";
      description = "Webserver";
      implementation = "C/C++";
      benchmark = "Apache ab";
      sites = c_app 0.923 @ unpatchable 0.077;
      paper_reduction = 0.923;
      paper_manual_reduction = None;
    };
    {
      name = "MySQL";
      description = "Database";
      implementation = "C/C++";
      benchmark = "sysbench";
      sites =
        (* Hot path through libpthread's two cancellable wrappers (read
           and write): 47.6% of dynamic syscalls, recoverable offline;
           7.8% through shapes no tool handles; the rest plain glibc. *)
        c_app 0.446
        @ spread Builder.Cancellable 0.476 rw
        @ unpatchable 0.078;
      paper_reduction = 0.446;
      paper_manual_reduction = Some 0.922;
    };
  ]

let find name =
  List.find_opt (fun p -> String.lowercase_ascii p.name = String.lowercase_ascii name) all

type measurement = {
  profile : profile;
  invocations : int;
  auto_reduction : float;
  manual_reduction : float;
  sites_patched : int;
  cmpxchg_ops : int;
}

(* Draw a site index by weight. *)
let pick_site rng cumulative =
  let x = Xc_sim.Prng.float rng 1.0 in
  let n = Array.length cumulative in
  let rec go i = if i >= n - 1 || cumulative.(i) >= x then i else go (i + 1) in
  go 0

let run_workload ~invocations ~seed ~offline profile =
  let wrappers = List.map (fun (style, nr, _) -> (style, nr)) profile.sites in
  let prog = Builder.build wrappers in
  let table = Xc_abom.Entry_table.create () in
  let patcher = Xc_abom.Patcher.create table in
  if offline then
    ignore (Xc_abom.Offline_tool.patch_image ~aggressive:true patcher prog.image);
  let config = Xc_abom.Patcher.machine_config patcher () in
  let machine = Machine.create ~config prog.image ~entry:prog.entry in
  let weights = List.map (fun (_, _, w) -> w) profile.sites in
  let total_w = List.fold_left ( +. ) 0. weights in
  let cumulative =
    let acc = ref 0. in
    Array.of_list (List.map (fun w -> acc := !acc +. (w /. total_w); !acc) weights)
  in
  let site_offs = Array.of_list (List.map (fun s -> s.Builder.wrapper_off) prog.sites) in
  let rng = Xc_sim.Prng.create seed in
  for _ = 1 to invocations do
    let i = pick_site rng cumulative in
    Machine.reset machine ~entry:site_offs.(i);
    match Machine.run ~fuel:1000 machine with
    | Machine.Halted -> ()
    | Fuel_exhausted -> failwith "profile workload: fuel exhausted"
    | Fault msg -> failwith ("profile workload fault: " ^ msg)
  done;
  let events = Machine.events machine in
  let fast = List.length (List.filter (fun e -> e.Machine.kind = `Fast) events) in
  let total = List.length events in
  let reduction = if total = 0 then 0. else float_of_int fast /. float_of_int total in
  (reduction, patcher)

let measure ?(invocations = 50_000) ?(seed = 7) profile =
  let auto_reduction, patcher = run_workload ~invocations ~seed ~offline:false profile in
  let manual_reduction, _ = run_workload ~invocations ~seed ~offline:true profile in
  {
    profile;
    invocations;
    auto_reduction;
    manual_reduction;
    sites_patched = Xc_abom.Patcher.patched_sites patcher;
    cmpxchg_ops = Xc_abom.Patcher.cmpxchg_ops patcher;
  }
