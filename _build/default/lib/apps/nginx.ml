module K = Xc_os.Kernel

let abom_coverage = 0.923

(* ab closes the connection every request: accept4, two epoll_ctl, read,
   stat+open+fstat+read for the (cached) file, writev, access log write,
   close x2, epoll_wait shares.  16 syscalls, ~7us of parsing and
   response assembly, 5 packets (SYN/ACK/FIN overhead folded into irqs). *)
let static_request_ab =
  Recipe.make ~name:"nginx-static-ab" ~user_ns:6_500.
    ~ops:
      [
        K.Epoll;
        K.Accept_op;
        K.Cheap Getuid (* getsockopt stand-in *);
        K.Epoll;
        K.Socket_recv 220;
        K.Stat_op;
        K.Open_op;
        K.Cheap Fstat;
        K.File_read 1024;
        K.Socket_send 1024;
        K.File_write 110 (* access log *);
        K.Cheap Close;
        K.Cheap Close;
        K.Epoll;
        K.Cheap Dup;
        K.Cheap Umask;
      ]
    ~request_bytes:220 ~response_bytes:1024 ~irqs:5 ~abom_coverage ()

(* wrk keeps connections open: no accept/close, fewer packets. *)
let static_request_wrk =
  Recipe.make ~name:"nginx-static-wrk" ~user_ns:5_500.
    ~ops:
      [
        K.Epoll;
        K.Socket_recv 180;
        K.Stat_op;
        K.File_read 1024;
        K.Socket_send 1024;
        K.File_write 110;
        K.Epoll;
        K.Cheap Getpid;
      ]
    ~request_bytes:180 ~response_bytes:1024 ~irqs:2 ~abom_coverage ()

let workers_default = 1

let server ?(workers = workers_default) ?(keepalive = true) ~cores platform =
  let recipe = if keepalive then static_request_wrk else static_request_ab in
  let base = Recipe.service_ns platform recipe in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min workers cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.08 in
        base *. Float.max 0.5 jitter);
    overhead_ns = 0.;
  }
