(** The Postgres model (Table 1: C/C++, pgbench, 99.8% ABOM coverage).

    Unlike the threaded databases, Postgres is process-per-connection:
    requests do not hop processes, but the server keeps a backend process
    per client, so platform fork costs show up in connection setup and
    the working set grows with connections.  pgbench's TPC-B-like
    transaction touches several pages and the WAL. *)

val abom_coverage : float
val transaction : Recipe.t

val connection_setup_ns : Xc_platforms.Platform.t -> float
(** Cost of a new client connection: fork a backend + handshake. *)

val server :
  ?backends:int -> cores:int -> Xc_platforms.Platform.t ->
  Xc_platforms.Closed_loop.server
