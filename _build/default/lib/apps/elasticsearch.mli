(** The Elasticsearch model (Table 1: Java, elasticsearch-stress-test,
    98.8%).

    Search and indexing on the JVM: requests carry heavy user-space work
    (JSON, scoring, the JVM itself), indexing appends to the translog,
    and a small share of syscalls go through JVM-internal wrappers the
    online patcher does not match. *)

val abom_coverage : float
val search_request : Recipe.t
val index_request : Recipe.t

val mixed_request : Recipe.t
(** The stress test's default 80/20 search/index mix. *)

val server :
  cores:int -> Xc_platforms.Platform.t -> Xc_platforms.Closed_loop.server
