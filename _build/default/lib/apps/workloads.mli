(** The paper's workload generators, as data.

    Section 5 names its client tools: Apache [ab] for NGINX (Figure 3),
    [memtier_benchmark] with a 1:10 SET:GET ratio for memcached/Redis,
    [redis-benchmark], [wrk] for the LibOS and scalability experiments,
    and [iperf] for raw TCP.  Each description pairs the closed-loop
    configuration the generator induces with its documented behaviour,
    so experiments reference generators by name instead of magic
    numbers. *)

type t = {
  name : string;
  tool : string;  (** the real-world client *)
  connections : int;
  keepalive : bool;
  set_get_ratio : (int * int) option;  (** memtier-style mix *)
  notes : string;
}

val ab : t
(** Apache ab: 100 concurrent connections, no keep-alive (a fresh TCP
    connection per request — the Figure 3 NGINX driver). *)

val wrk : t
(** wrk: keep-alive, moderate connection count (Figures 6, 9). *)

val wrk_scalability : t
(** wrk as used in Figure 8: 5 connections per container. *)

val memtier : t
(** memtier_benchmark: many connections, 1:10 SET:GET. *)

val redis_bench : t
val all : t list
val find : string -> t option

val closed_loop_config :
  ?duration_ns:float -> ?seed:int -> t -> Xc_platforms.Closed_loop.config
(** The closed-loop driver configuration this generator induces. *)
