(** The LibOS comparison of Section 5.5 (Figure 6).

    Three experiments on the local cluster (16 cores, 10 GbE, no Meltdown
    patches): NGINX with one worker on a dedicated core, NGINX with four
    workers, and two PHP CGI servers backed by MySQL in the three
    topologies of Figure 7 (shared DB, dedicated DBs, and — X-Containers
    only — PHP and MySQL merged into one container). *)

type contender = G | U | X  (** Graphene, Unikernel, X-Container *)

val contender_name : contender -> string
val platform_of : contender -> Xc_platforms.Platform.t

val nginx_one_worker : contender -> float
(** Requests/second, one worker on one dedicated core (Figure 6a). *)

val nginx_four_workers : contender -> float option
(** Figure 6b; [None] for Unikernel (single-process only). *)

type db_topology = Shared | Dedicated | Dedicated_merged

val topology_name : db_topology -> string

val php_mysql : contender -> db_topology -> float option
(** Total requests/second of the two PHP servers (Figure 6c); [None] for
    unsupported combinations (Graphene cannot run the PHP CGI server;
    merging requires multi-process support, so not Unikernel). *)

val queries_per_page : int
