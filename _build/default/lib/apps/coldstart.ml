module Engine = Xc_sim.Engine
module Prng = Xc_sim.Prng
module Histogram = Xc_sim.Histogram

type spawn_path = Docker_spawn | Xc_cold_xl | Xc_cold_lightvm | Xc_clone

let spawn_path_name = function
  | Docker_spawn -> "Docker spawn"
  | Xc_cold_xl -> "X-Container (xl toolstack)"
  | Xc_cold_lightvm -> "X-Container (LightVM)"
  | Xc_clone -> "X-Container (clone)"

let all_paths = [ Docker_spawn; Xc_cold_xl; Xc_cold_lightvm; Xc_clone ]

(* Spawn times mirror the Boot/Cloning models (kept numerically inline
   to avoid a dependency cycle with xcontainers; pinned by tests). *)
let spawn_ns = function
  | Docker_spawn -> 400e6
  | Xc_cold_xl -> 3000e6
  | Xc_cold_lightvm -> 184e6
  | Xc_clone -> 5.8e6

type config = {
  arrival_rate_rps : float;
  service_ns : float;
  keepalive_ns : float;
  duration_ns : float;
  seed : int;
}

let default_config ~rate_rps =
  {
    arrival_rate_rps = rate_rps;
    service_ns = 50e6;
    keepalive_ns = 30e9;
    duration_ns = 600e9;
    seed = 23;
  }

type result = {
  invocations : int;
  cold_starts : int;
  cold_fraction : float;
  p50_latency_ns : float;
  p99_latency_ns : float;
  max_warm_pool : int;
}

(* Warm instances as a multiset of expiry/free times: an instance is
   reusable if it is idle now and not expired. *)
type instance = { mutable free_at : float; mutable expires_at : float }

let run path config =
  if config.arrival_rate_rps <= 0. then invalid_arg "Coldstart.run: rate";
  let engine = Engine.create () in
  let rng = Prng.create config.seed in
  let latencies = Histogram.create () in
  let pool : instance list ref = ref [] in
  let invocations = ref 0 in
  let cold = ref 0 in
  let max_pool = ref 0 in
  let spawn = spawn_ns path in
  let mean_gap = 1e9 /. config.arrival_rate_rps in
  let find_warm now =
    (* Drop expired instances, then pick an idle one. *)
    pool := List.filter (fun i -> i.expires_at > now) !pool;
    List.find_opt (fun i -> i.free_at <= now) !pool
  in
  let handle_invocation engine =
    let now = Engine.now engine in
    incr invocations;
    let start_delay, instance =
      match find_warm now with
      | Some i -> (0., i)
      | None ->
          incr cold;
          let i = { free_at = now; expires_at = now } in
          pool := i :: !pool;
          (spawn, i)
    in
    let finish = now +. start_delay +. config.service_ns in
    instance.free_at <- finish;
    instance.expires_at <- finish +. config.keepalive_ns;
    if List.length !pool > !max_pool then max_pool := List.length !pool;
    Histogram.add latencies (start_delay +. config.service_ns)
  in
  let rec arrivals engine =
    let now = Engine.now engine in
    if now < config.duration_ns then begin
      handle_invocation engine;
      Engine.schedule engine
        (now +. Prng.exponential rng ~mean:mean_gap)
        arrivals
    end
  in
  Engine.schedule engine 0. arrivals;
  Engine.run engine;
  {
    invocations = !invocations;
    cold_starts = !cold;
    cold_fraction =
      (if !invocations = 0 then 0.
       else float_of_int !cold /. float_of_int !invocations);
    p50_latency_ns = Histogram.percentile latencies 50.;
    p99_latency_ns = Histogram.percentile latencies 99.;
    max_warm_pool = !max_pool;
  }
