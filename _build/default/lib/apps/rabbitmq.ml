module K = Xc_os.Kernel

let abom_coverage = 0.986

let publish_transient =
  Recipe.make ~name:"rabbitmq-publish" ~user_ns:11_000.
    ~ops:
      [
        (* producer leg *)
        K.Epoll;
        K.Socket_recv 1200;
        K.Cheap Getpid;
        (* route + consumer leg *)
        K.Socket_send 1200;
        K.Epoll;
        K.Socket_recv 60 (* ack *);
        K.Socket_send 60;
      ]
    ~request_bytes:1200 ~response_bytes:60 ~irqs:4 ~abom_coverage ()

let publish_persistent =
  Recipe.make ~name:"rabbitmq-publish-persistent"
    ~user_ns:13_000.
    ~ops:(publish_transient.Recipe.ops @ [ K.File_write 1300; K.File_write 0 ])
    ~request_bytes:1200 ~response_bytes:60 ~irqs:4 ~abom_coverage ()

let server ~cores platform =
  let base = Recipe.service_ns platform publish_transient in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min 4 cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.15 in
        base *. Float.max 0.4 jitter);
    overhead_ns = 0.;
  }
