(** Table 1: per-application ABOM coverage, measured for real.

    Each profile describes one of the paper's twelve applications by its
    mix of syscall-wrapper shapes (which depends on the implementation
    language/runtime: glibc wrappers for C, the stack-loaded pattern for
    Go, cancellable libpthread wrappers where threads block) and how often
    the workload's dynamic syscalls go through each site.

    [measure] then does what the paper's counter in the X-Kernel does:
    builds the synthetic binary, runs the workload on the ISA machine
    with ABOM live-patching on syscall traps, and reports what fraction
    of syscall invocations ended up as function calls. *)

type profile = {
  name : string;
  description : string;
  implementation : string;  (** language/runtime, as in Table 1 *)
  benchmark : string;  (** the workload generator named in Table 1 *)
  sites : (Xc_isa.Builder.style * int * float) list;
      (** wrapper style, syscall number, workload weight *)
  paper_reduction : float;  (** the fraction Table 1 reports *)
  paper_manual_reduction : float option;
      (** Table 1's parenthetical for MySQL *)
}

val all : profile list
(** The twelve rows of Table 1, in paper order. *)

val find : string -> profile option

type measurement = {
  profile : profile;
  invocations : int;
  auto_reduction : float;  (** online ABOM only *)
  manual_reduction : float;  (** offline tool applied first *)
  sites_patched : int;
  cmpxchg_ops : int;
}

val measure : ?invocations:int -> ?seed:int -> profile -> measurement
(** Run the workload ([invocations] syscalls drawn by site weight; default
    50_000) on the ISA machine under the X-Kernel's ABOM. *)
