lib/apps/coldstart.ml: List Xc_sim
