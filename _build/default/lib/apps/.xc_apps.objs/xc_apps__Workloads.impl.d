lib/apps/workloads.ml: List Xc_platforms
