lib/apps/unixbench.mli: Xc_platforms
