lib/apps/recipe.mli: Xc_os Xc_platforms Xc_sim
