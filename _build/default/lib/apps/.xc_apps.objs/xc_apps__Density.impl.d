lib/apps/density.ml: Float Stdlib Xc_hypervisor
