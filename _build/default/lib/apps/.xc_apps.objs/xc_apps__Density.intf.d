lib/apps/density.mli:
