lib/apps/redis.mli: Recipe Xc_platforms
