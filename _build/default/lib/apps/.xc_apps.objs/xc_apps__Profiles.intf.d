lib/apps/profiles.mli: Xc_isa
