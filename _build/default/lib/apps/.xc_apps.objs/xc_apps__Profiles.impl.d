lib/apps/profiles.ml: Array List String Xc_abom Xc_isa Xc_sim
