lib/apps/kernel_build.ml: Float Xc_os Xc_platforms
