lib/apps/postgres.mli: Recipe Xc_platforms
