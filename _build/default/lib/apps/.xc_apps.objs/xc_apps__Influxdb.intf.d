lib/apps/influxdb.mli: Recipe Xc_platforms
