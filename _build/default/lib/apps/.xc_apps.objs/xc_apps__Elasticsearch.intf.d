lib/apps/elasticsearch.mli: Recipe Xc_platforms
