lib/apps/postgres.ml: Float Recipe Stdlib Xc_os Xc_platforms Xc_sim
