lib/apps/kernel_build.mli: Xc_platforms
