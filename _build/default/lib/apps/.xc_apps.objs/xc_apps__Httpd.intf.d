lib/apps/httpd.mli: Xc_os
