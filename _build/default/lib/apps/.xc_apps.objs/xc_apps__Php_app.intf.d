lib/apps/php_app.mli: Recipe Xc_os
