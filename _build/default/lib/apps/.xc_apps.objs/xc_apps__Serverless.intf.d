lib/apps/serverless.mli: Xc_platforms
