lib/apps/rabbitmq.mli: Recipe Xc_platforms
