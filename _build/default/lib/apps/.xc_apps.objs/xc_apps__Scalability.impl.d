lib/apps/scalability.ml: Float List Php_app Recipe Xc_cpu Xc_platforms
