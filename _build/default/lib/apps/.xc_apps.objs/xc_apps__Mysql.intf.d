lib/apps/mysql.mli: Recipe Xc_platforms
