lib/apps/scalability.mli: Xc_platforms
