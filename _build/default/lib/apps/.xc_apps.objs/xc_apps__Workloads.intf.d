lib/apps/workloads.mli: Xc_platforms
