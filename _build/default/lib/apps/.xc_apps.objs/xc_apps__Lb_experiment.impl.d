lib/apps/lb_experiment.ml: Float Nginx Recipe Xc_net Xc_platforms
