lib/apps/httpd.ml: Bytes Printf String Xc_os
