lib/apps/redis.ml: Float Recipe Xc_os Xc_platforms Xc_sim
