lib/apps/serverless.ml: List Mysql Nginx Recipe Xc_cpu Xc_net Xc_os Xc_platforms
