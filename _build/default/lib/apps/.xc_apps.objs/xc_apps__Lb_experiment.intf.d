lib/apps/lb_experiment.mli:
