lib/apps/etcd.ml: Float List Recipe Stdlib Xc_os Xc_platforms Xc_sim
