lib/apps/recipe.ml: Float List Xc_os Xc_platforms Xc_sim
