lib/apps/fluentd.mli: Recipe Xc_platforms
