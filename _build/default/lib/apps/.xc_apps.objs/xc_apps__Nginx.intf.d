lib/apps/nginx.mli: Recipe Xc_platforms
