lib/apps/unixbench.ml: Float Xc_net Xc_os Xc_platforms
