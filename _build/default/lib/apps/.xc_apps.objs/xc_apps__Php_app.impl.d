lib/apps/php_app.ml: List Recipe Xc_os
