lib/apps/etcd.mli: Recipe Xc_platforms
