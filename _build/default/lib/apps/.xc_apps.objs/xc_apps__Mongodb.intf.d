lib/apps/mongodb.mli: Recipe Xc_platforms
