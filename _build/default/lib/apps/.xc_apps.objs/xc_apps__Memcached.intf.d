lib/apps/memcached.mli: Recipe Xc_platforms
