lib/apps/coldstart.mli:
