(** The MongoDB model (Table 1: C/C++, YCSB, 100% ABOM coverage).

    Document store with a B-tree/WiredTiger-style engine: queries touch
    more user-space work (BSON parsing, snapshot bookkeeping) than the
    plain caches, and writes hit the journal. *)

val abom_coverage : float
val read_request : Recipe.t
val update_request : Recipe.t

val ycsb_a : Recipe.t
(** YCSB workload A: 50/50 read/update. *)

val server :
  cores:int -> Xc_platforms.Platform.t -> Xc_platforms.Closed_loop.server
