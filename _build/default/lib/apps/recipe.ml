type t = {
  name : string;
  user_ns : float;
  ops : Xc_os.Kernel.op list;
  request_bytes : int;
  response_bytes : int;
  process_hops : int;
  irqs : int;
  abom_coverage : float;
}

let make ~name ~user_ns ~ops ?(request_bytes = 256) ?(response_bytes = 1024)
    ?(process_hops = 0) ?(irqs = 2) ?(abom_coverage = 1.0) () =
  {
    name;
    user_ns;
    ops;
    request_bytes;
    response_bytes;
    process_hops;
    irqs;
    abom_coverage;
  }

let syscall_count t = List.length t.ops

let syscalls_ns platform t =
  List.fold_left
    (fun acc op ->
      acc +. Xc_platforms.Platform.syscall_ns ~coverage:t.abom_coverage platform op)
    0. t.ops

let cpu_only_ns platform t =
  t.user_ns +. syscalls_ns platform t
  +. (float_of_int t.process_hops
     *. Xc_platforms.Platform.process_switch_ns platform)
  +. (float_of_int t.irqs *. Xc_platforms.Platform.irq_ns platform)

let service_ns platform t =
  cpu_only_ns platform t
  +. Xc_platforms.Platform.request_net_ns platform ~request_bytes:t.request_bytes
       ~response_bytes:t.response_bytes

let with_jitter t platform ~cv rng =
  let base = service_ns platform t in
  if cv <= 0. then base
  else begin
    let sample = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:cv in
    base *. Float.max 0.2 sample
  end
