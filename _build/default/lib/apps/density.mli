(** Memory density: how many X-Containers fit on one host.

    Section 4.5 flags the prototype's static per-container reservation
    as a limitation and points at ballooning and transcendent memory as
    the known fixes.  This experiment quantifies them: pack a 96 GB host
    with 128 MB X-Containers under three policies —

    - [Static]: the prototype as evaluated (Figure 8's regime);
    - [Balloon]: idle containers ballooned down to the 64 MB floor the
      paper measured X-Containers to work at (footnote, Section 5.6);
    - [Balloon_tmem]: ballooning plus a shared tmem pool absorbing the
      reclaimed pages as shared page cache, recovering part of the I/O
      cost of running smaller. *)

type policy = Static | Balloon | Balloon_tmem

val policy_name : policy -> string
val all_policies : policy list

type result = {
  policy : policy;
  containers : int;  (** how many booted before memory ran out *)
  active_fraction : float;  (** containers busy at any instant *)
  tmem_pool_mb : int;  (** pages pooled for sharing (tmem only) *)
  est_page_cache_hit_gain : float;
      (** fraction of storage reads served from the shared pool *)
}

val run :
  ?host_mb:int -> ?reservation_mb:int -> ?active_fraction:float -> policy ->
  result
(** Defaults: 96 GB host, 128 MB reservations, 20% of containers active
    (the intermittent serverless regime of the paper's motivation). *)

val density_gain : result -> result -> float
(** containers(b) / containers(a). *)
