(** Serverless cold starts.

    Section 5.5 motivates X-Containers with serverless compute:
    "short-running, user-driven online services with intermittent
    behavior".  Intermittent means instances go cold, and invocation
    latency is dominated by how fast the platform can conjure one.  This
    experiment combines the boot/cloning models with a Poisson
    invocation stream and a keep-alive warm pool. *)

type spawn_path =
  | Docker_spawn  (** containerd + namespaces, ~400 ms *)
  | Xc_cold_xl  (** X-Container, stock xl toolstack, ~3 s *)
  | Xc_cold_lightvm  (** X-Container, LightVM toolstack, ~184 ms *)
  | Xc_clone  (** X-Container forked from a warm snapshot, ~6 ms *)

val spawn_path_name : spawn_path -> string
val all_paths : spawn_path list
val spawn_ns : spawn_path -> float

type config = {
  arrival_rate_rps : float;  (** invocations per second *)
  service_ns : float;  (** function execution time *)
  keepalive_ns : float;  (** how long an idle instance stays warm *)
  duration_ns : float;
  seed : int;
}

val default_config : rate_rps:float -> config
(** 50 ms of function work, 30 s keep-alive, 10 min simulated. *)

type result = {
  invocations : int;
  cold_starts : int;
  cold_fraction : float;
  p50_latency_ns : float;
  p99_latency_ns : float;
  max_warm_pool : int;
}

val run : spawn_path -> config -> result
