module K = Xc_os.Kernel

let abom_coverage = 1.0

let get_request =
  Recipe.make ~name:"etcd-get" ~user_ns:4_200.
    ~ops:[ K.Epoll; K.Socket_recv 120; K.Socket_send 480; K.Cheap Getpid ]
    ~request_bytes:120 ~response_bytes:480 ~irqs:2 ~abom_coverage ()

let put_request ?(peers = 0) () =
  let wal = [ K.File_write 512; K.File_write 64 (* WAL entry + index *) ] in
  let replication =
    List.concat
      (List.init peers (fun _ -> [ K.Socket_send 600; K.Epoll; K.Socket_recv 80 ]))
  in
  Recipe.make ~name:"etcd-put" ~user_ns:9_500.
    ~ops:([ K.Epoll; K.Socket_recv 600 ] @ wal @ replication @ [ K.Socket_send 90 ])
    ~request_bytes:600 ~response_bytes:90 ~irqs:(2 + peers) ~abom_coverage ()

let mixed_request =
  let r = get_request and w = put_request () in
  Recipe.make ~name:"etcd-mixed"
    ~user_ns:((0.75 *. r.Recipe.user_ns) +. (0.25 *. w.Recipe.user_ns))
    ~ops:(r.Recipe.ops @ [ K.File_write 512 ] (* amortised WAL share *))
    ~request_bytes:240 ~response_bytes:380 ~irqs:2 ~abom_coverage ()

let server ~cores platform =
  let base = Recipe.service_ns platform mixed_request in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min 4 cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.12 in
        base *. Float.max 0.4 jitter);
    overhead_ns = 0.;
  }
