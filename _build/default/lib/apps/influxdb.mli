(** The InfluxDB model (Table 1: Go, influxdb-comparisons, 100%).

    A time-series database: writes arrive as line-protocol batches and
    append to the WAL plus the in-memory TSM cache; queries scan series.
    Go runtime, so syscall sites use the stack-loaded pattern (ABOM case
    2) — coverage is full. *)

val abom_coverage : float

val write_batch : points:int -> Recipe.t
val range_query : Recipe.t

val mixed_request : Recipe.t
(** influxdb-comparisons' load phase mix: mostly writes. *)

val server :
  cores:int -> Xc_platforms.Platform.t -> Xc_platforms.Closed_loop.server
