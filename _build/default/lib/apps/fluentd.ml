module K = Xc_os.Kernel

let abom_coverage = 0.994

let ingest_batch ~events =
  let bytes = events * 280 in
  Recipe.make ~name:"fluentd-ingest"
    ~user_ns:(float_of_int events *. 2_200.) (* Ruby parse + tag routing *)
    ~ops:
      [
        K.Epoll;
        K.Socket_recv bytes;
        K.Cheap Getpid (* clock per batch *);
        K.Socket_send 40 (* ack *);
      ]
    ~request_bytes:bytes ~response_bytes:40 ~irqs:3 ~abom_coverage ()

let flush_chunk =
  Recipe.make ~name:"fluentd-flush" ~user_ns:45_000.
    ~ops:[ K.Open_op; K.File_write 262144; K.File_write 0; K.Cheap Close ]
    ~request_bytes:0 ~response_bytes:0 ~irqs:0 ~abom_coverage ()

let steady_state =
  let batch = ingest_batch ~events:100 in
  (* One flush per ~40 batches. *)
  Recipe.make ~name:"fluentd-steady"
    ~user_ns:(batch.Recipe.user_ns +. (flush_chunk.Recipe.user_ns /. 40.))
    ~ops:(batch.Recipe.ops @ [ K.File_write 6554 (* amortised flush share *) ])
    ~request_bytes:batch.Recipe.request_bytes ~response_bytes:40 ~irqs:3
    ~abom_coverage ()

let server ?(workers = 2) ~cores platform =
  let base = Recipe.service_ns platform steady_state in
  {
    Xc_platforms.Closed_loop.units = Stdlib.max 1 (Stdlib.min workers cores);
    service_ns =
      (fun rng ->
        let jitter = Xc_sim.Prng.normal rng ~mean:1.0 ~stddev:0.15 in
        base *. Float.max 0.4 jitter);
    overhead_ns = 0.;
  }
