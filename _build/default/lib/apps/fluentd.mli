(** The Fluentd model (Table 1: Ruby, fluentd-benchmark, 99.4%).

    A log collector: batches of events arrive over TCP, get parsed and
    buffered, and flush to disk in chunks.  Like NGINX it can run a
    process pool for concurrency (Section 2.2).  Ruby's VM does notable
    user-space work per event; a sliver of its syscalls sit behind
    runtime wrappers the online patcher does not recognise. *)

val abom_coverage : float

val ingest_batch : events:int -> Recipe.t
(** One network batch of [events] log records (parse + buffer). *)

val flush_chunk : Recipe.t
(** Buffer flush: a large sequential write plus an fsync-class barrier. *)

val steady_state : Recipe.t
(** The benchmark's steady state: a 100-event batch with the amortised
    share of flushing folded in. *)

val server :
  ?workers:int -> cores:int -> Xc_platforms.Platform.t ->
  Xc_platforms.Closed_loop.server
