(** The kernel-customization case study of Section 5.7 (Figure 9).

    Three single-worker NGINX servers behind one load balancer, all on
    one physical machine.  Docker can only run a user-space balancer
    (HAProxy); X-Containers can also insert the IPVS kernel modules —
    NAT mode first, then direct routing, which moves the bottleneck from
    the balancer to the web servers. *)

type setup =
  | Docker_haproxy
  | Xcontainer_haproxy
  | Xcontainer_ipvs_nat
  | Xcontainer_ipvs_dr

val setup_name : setup -> string
val all : setup list

type result = {
  setup : setup;
  throughput_rps : float;
  lb_service_ns : float;  (** balancer cost per request *)
  bottleneck : [ `Balancer | `Backends ];
}

val run : setup -> result

val backends : int
