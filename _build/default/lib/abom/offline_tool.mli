(** Offline binary patching tool.

    The paper complements online ABOM with an offline tool able to
    "inject code into the binary and re-direct a bigger chunk of code" for
    sites the online patcher cannot recognise — the motivating example
    being the two cancellable-syscall locations in libpthread that hold
    MySQL at 44.6% automatic reduction (92.2% after manual patching,
    Table 1).

    The offline tool scans the whole image ahead of time instead of
    waiting for traps, so it may use non-atomic multi-instruction
    rewrites: the process is not running. *)

type report = {
  sites_seen : int;  (** [syscall] instructions found by the linear sweep *)
  sites_patched : int;
  sites_skipped : int;
}

val patch_image :
  ?aggressive:bool -> Patcher.t -> Xc_isa.Image.t -> report
(** Sweep the image and patch every recognised site.  With
    [~aggressive:true] the cancellable pattern
    [mov $n,%eax; xchg %ax,%ax; syscall] is also rewritten (the manual
    libpthread patch), redirecting the whole 9-byte chunk. *)

val pp_report : Format.formatter -> report -> unit
