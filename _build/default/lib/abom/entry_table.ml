let base = 0xffffffffff600000L
let dynamic_address = 0xffffffffff600c08L
let max_syscalls = 384 (* table slots below the dynamic entry at 0xc08 *)

type t = { mutable registered : int list }

let create () = { registered = [] }

let address_of t sysno =
  if sysno < 0 || sysno >= max_syscalls then
    invalid_arg "Entry_table.address_of: syscall number out of range";
  if not (List.mem sysno t.registered) then t.registered <- sysno :: t.registered;
  Int64.add base (Int64.of_int (8 * sysno))

let lookup _t addr : Xc_isa.Machine.entry option =
  if Int64.equal addr dynamic_address then Some Dynamic
  else begin
    let off = Int64.sub addr base in
    if Int64.compare off 0L >= 0
       && Int64.compare off (Int64.of_int (8 * max_syscalls)) < 0
       && Int64.rem off 8L = 0L
    then Some (Fixed (Int64.to_int (Int64.div off 8L)))
    else None
  end

let registered t = List.sort compare t.registered
