module Image = Xc_isa.Image
module Insn = Xc_isa.Insn
module Codec = Xc_isa.Codec

type report = { sites_seen : int; sites_patched : int; sites_skipped : int }

(* Cancellable pattern: mov $n,%eax (5) + nop2 (2) + syscall (2) = 9 bytes,
   rewritten as call *entry (7) + jmp -9 (2).  Only valid offline: the
   intermediate state is not equivalent, but the process is not running. *)
let try_cancellable patcher image ~syscall_off =
  if syscall_off < 7 then false
  else begin
    (* Layout: [mov $n,%eax (5)][xchg %ax,%ax (2)][syscall (2)], so the
       nop sits at -2 and the mov at -7 relative to the syscall. *)
    match (Image.insn_at image (syscall_off - 2), Image.insn_at image (syscall_off - 7))
    with
    | (Insn.Nop2, 2), (Insn.Mov_eax_imm32 sysno, 5)
      when sysno < Entry_table.max_syscalls ->
        let addr = Entry_table.address_of (Patcher.table patcher) sysno in
        let start = syscall_off - 7 in
        (* Rewrite the whole 9-byte chunk: call (over mov+nop) then a jmp
           (over the syscall) bouncing stray entries back onto the call. *)
        let buf = Bytes.create 9 in
        ignore (Codec.encode_into buf 0 (Insn.Call_abs addr));
        ignore (Codec.encode_into buf 7 (Insn.Jmp_rel8 (-9)));
        (match Image.write image ~off:start buf ~wp_override:true with
        | Ok () -> true
        | Error msg -> failwith ("offline patch failed: " ^ msg))
    | _ -> false
  end

let patch_image ?(aggressive = false) patcher image =
  (* Linear sweep; collect syscall offsets first because patching shifts
     instruction boundaries behind the cursor. *)
  let syscall_offs =
    Codec.decode_all (Image.code image)
    |> List.filter_map (fun (off, insn) ->
           match insn with Insn.Syscall -> Some off | _ -> None)
  in
  let patched = ref 0 and skipped = ref 0 in
  List.iter
    (fun syscall_off ->
      match Patcher.patch_site patcher image ~syscall_off with
      | Patched_case1 | Patched_case2 | Patched_9byte -> incr patched
      | Already_patched -> incr skipped
      | Unrecognized ->
          if aggressive && try_cancellable patcher image ~syscall_off then
            incr patched
          else incr skipped)
    syscall_offs;
  {
    sites_seen = List.length syscall_offs;
    sites_patched = !patched;
    sites_skipped = !skipped;
  }

let pp_report fmt r =
  Format.fprintf fmt "syscall sites: %d, patched: %d, skipped: %d" r.sites_seen
    r.sites_patched r.sites_skipped
