(** Syscall profiling over machine traces.

    Section 3.1 argues compatibility extends to "profiling, debugging and
    deploying tools"; this module is the reproduction's profiler: it
    digests a machine's event stream into per-syscall and per-site
    statistics — which syscalls dominate, which sites stayed unconverted
    (the ones worth offline patching), and the overall conversion rate
    the paper's Table 1 counter reports. *)

type site_stat = {
  site : int;  (** code offset of the call site *)
  sysno : int;
  invocations : int;
  trapped : int;  (** still going through the X-Kernel *)
}

type t = {
  total : int;
  trapped : int;
  converted : int;
  by_sysno : (int * int) list;  (** sysno, invocations; descending *)
  sites : site_stat list;  (** by invocations, descending *)
}

val of_events : Xc_isa.Machine.event list -> t

val of_machine : Xc_isa.Machine.t -> t

val reduction : t -> float
(** Converted fraction (Table 1's metric); [0.] when empty. *)

val hot_unconverted : ?top:int -> t -> site_stat list
(** The sites worth feeding to the offline tool: still trapping, ordered
    by how often they run (default top 5). *)

val pp : Format.formatter -> t -> unit
(** A small report: totals, reduction, top syscalls, hot unconverted
    sites. *)
