module Machine = Xc_isa.Machine

type site_stat = {
  site : int;
  sysno : int;
  invocations : int;
  trapped : int;
}

type t = {
  total : int;
  trapped : int;
  converted : int;
  by_sysno : (int * int) list;
  sites : site_stat list;
}

let of_events events =
  let total = List.length events in
  let trapped =
    List.length (List.filter (fun (e : Machine.event) -> e.kind = `Trap) events)
  in
  let by_sysno_tbl = Hashtbl.create 16 in
  let by_site_tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Machine.event) ->
      let bump tbl key f =
        Hashtbl.replace tbl key (f (Hashtbl.find_opt tbl key))
      in
      bump by_sysno_tbl e.sysno (function Some n -> n + 1 | None -> 1);
      bump by_site_tbl e.site (function
        | Some (sysno, inv, traps) ->
            (sysno, inv + 1, if e.kind = `Trap then traps + 1 else traps)
        | None -> (e.sysno, 1, if e.kind = `Trap then 1 else 0)))
    events;
  let by_sysno =
    Hashtbl.fold (fun sysno n acc -> (sysno, n) :: acc) by_sysno_tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let sites =
    Hashtbl.fold
      (fun site (sysno, invocations, trapped) acc ->
        { site; sysno; invocations; trapped } :: acc)
      by_site_tbl []
    |> List.sort (fun (a : site_stat) (b : site_stat) ->
           compare b.invocations a.invocations)
  in
  { total; trapped; converted = total - trapped; by_sysno; sites }

let of_machine m = of_events (Machine.events m)

let reduction t =
  if t.total = 0 then 0. else float_of_int t.converted /. float_of_int t.total

let hot_unconverted ?(top = 5) t =
  t.sites
  |> List.filter (fun (s : site_stat) -> s.trapped > 0)
  |> List.sort (fun (a : site_stat) (b : site_stat) -> compare b.trapped a.trapped)
  |> List.filteri (fun i _ -> i < top)

let sysno_name n =
  match Xc_os.Syscall_nr.of_number n with
  | Some s -> Xc_os.Syscall_nr.name s
  | None -> Printf.sprintf "sys_%d" n

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "syscalls: %d total, %d converted (%.2f%%), %d trapped@,"
    t.total t.converted (100. *. reduction t) t.trapped;
  Format.fprintf fmt "top syscalls:@,";
  List.iteri
    (fun i (sysno, n) ->
      if i < 5 then Format.fprintf fmt "  %-12s %8d@," (sysno_name sysno) n)
    t.by_sysno;
  (match hot_unconverted t with
  | [] -> Format.fprintf fmt "no unconverted sites@,"
  | hot ->
      Format.fprintf fmt "hot unconverted sites (offline-tool candidates):@,";
      List.iter
        (fun (s : site_stat) ->
          Format.fprintf fmt "  site 0x%x (%s): %d traps of %d calls@," s.site
            (sysno_name s.sysno) s.trapped s.invocations)
        hot);
  Format.pp_close_box fmt ()
