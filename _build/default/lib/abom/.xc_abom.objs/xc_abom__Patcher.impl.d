lib/abom/patcher.ml: Entry_table Hashtbl List Xc_isa
