lib/abom/offline_tool.mli: Format Patcher Xc_isa
