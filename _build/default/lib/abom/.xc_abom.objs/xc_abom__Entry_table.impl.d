lib/abom/entry_table.ml: Int64 List Xc_isa
