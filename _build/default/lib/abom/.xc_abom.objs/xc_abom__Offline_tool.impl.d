lib/abom/offline_tool.ml: Bytes Entry_table Format List Patcher Xc_isa
