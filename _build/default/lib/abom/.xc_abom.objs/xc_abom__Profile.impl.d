lib/abom/profile.ml: Format Hashtbl List Printf Xc_isa Xc_os
