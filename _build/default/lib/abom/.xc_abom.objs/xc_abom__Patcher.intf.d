lib/abom/patcher.mli: Entry_table Xc_isa
