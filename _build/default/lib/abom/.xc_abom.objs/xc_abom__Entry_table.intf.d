lib/abom/entry_table.mli: Xc_isa
