lib/abom/profile.mli: Format Xc_isa
