(** The online Automatic Binary Optimization Module.

    Runs inside the X-Kernel: when a [syscall] instruction traps, ABOM
    inspects the bytes around it and, if they match a recognised wrapper
    pattern, rewrites the pair in place so every later execution takes a
    function call instead of a trap (Section 4.4, Figure 2).

    Patches are applied with simulated [cmpxchg] stores of at most eight
    bytes, honouring the paper's concurrency-safety argument: every
    intermediate byte state must itself be a valid, equivalent program.
    The two-phase 9-byte replacement is therefore two atomic stores, and
    [patch_site ~stop_after_phase1:true] lets tests freeze and execute the
    intermediate state. *)

type outcome =
  | Patched_case1  (** 7-byte replacement of [mov $n,%eax; syscall] *)
  | Patched_case2  (** 7-byte replacement of [mov 0x8(%rsp),%rax; syscall] *)
  | Patched_9byte  (** two-phase replacement of [mov $n,%rax; syscall] *)
  | Already_patched  (** another vCPU patched this site first *)
  | Unrecognized  (** no pattern; the syscall keeps trapping *)

val outcome_to_string : outcome -> string

type t
(** Patcher state: entry table plus patch statistics. *)

val create : Entry_table.t -> t
val table : t -> Entry_table.t

val patch_site :
  ?stop_after_phase1:bool -> t -> Xc_isa.Image.t -> syscall_off:int -> outcome
(** Attempt to rewrite the site whose [syscall] instruction starts at
    [syscall_off].  Write-protected pages are overridden (the CR0.WP
    dance) and end up dirty. *)

(** Statistics since [create]. *)

val patched_sites : t -> int
val unrecognized_sites : t -> int
val cmpxchg_ops : t -> int
val outcomes : t -> (outcome * int) list

(** {2 Machine integration} *)

val machine_config :
  ?enabled:bool -> t -> unit -> Xc_isa.Machine.config
(** A machine configuration wired to this patcher: syscall traps invoke
    [patch_site], patched calls resolve through the entry table, and the
    X-Kernel fixups are active.  [~enabled:false] gives the same
    environment with ABOM turned off (for the Table 1 baseline). *)
