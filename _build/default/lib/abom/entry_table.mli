(** The vsyscall system-call entry table.

    X-LibOS stores a table of system-call entry points in the vsyscall
    page, mapped at the same fixed virtual address in every process
    (Section 4.4).  Patched call sites go through
    [callq *0xffffffffff600000+8n]; the Go-style dynamic entry that reads
    the syscall number from the stack lives at [0xffffffffff600c08]. *)

type t

val base : int64
(** [0xffffffffff600000], the historical vsyscall page address. *)

val dynamic_address : int64
(** [0xffffffffff600c08]: the entry used by 7-byte case-2 replacements. *)

val max_syscalls : int

val create : unit -> t

val address_of : t -> int -> int64
(** [address_of t sysno] is the table slot for [sysno]; registers the
    entry.  Raises [Invalid_argument] outside [\[0, max_syscalls)]. *)

val lookup : t -> int64 -> Xc_isa.Machine.entry option
(** Resolve a call target back to an entry; [None] for foreign addresses. *)

val registered : t -> int list
(** Syscall numbers whose fixed entries have been handed out (sorted). *)
