(** The Docker Wrapper (Section 4.5).

    To run unmodified Docker images, the wrapper resolves the image,
    pairs it with an X-LibOS and a special bootloader that spawns the
    container's processes directly — no init system, no unnecessary
    services.  Here the "image" is a name plus the program the container
    runs (an ISA binary and/or a request recipe). *)

type image = {
  name : string;
  entry_program : Xc_isa.Builder.program option;
      (** the container's binary (for ABOM-level runs) *)
  recipe : Xc_apps.Recipe.t option;  (** its request behaviour *)
}

val registry : unit -> image list
(** Built-in images mirroring the paper's: nginx:1.13, memcached:1.5.7,
    redis:3.2.11, mysql, php, haproxy:1.7.5, ubuntu-bash. *)

val pull : string -> (image, string) result
(** Look an image up by name (exact or prefix before [':']). *)

val bootloader_process_count : image -> int
(** Processes the bootloader spawns for this image. *)
