type t = {
  name : string;
  image : string;
  vcpus : int;
  memory_mb : int;
  processes : int;
}

let default_memory_mb = 128

let make ?(vcpus = 1) ?(memory_mb = default_memory_mb) ?(processes = 1) ~name
    ~image () =
  { name; image; vcpus; memory_mb; processes }

let validate t =
  if t.name = "" then Error "container name must be non-empty"
  else if t.vcpus <= 0 then Error "vcpus must be positive"
  else if t.memory_mb < 64 then
    Error "X-Containers need at least 64MB (Section 5.6)"
  else if t.processes <= 0 then Error "processes must be positive"
  else Ok t

let pp fmt t =
  Format.fprintf fmt "%s (%s): %d vcpu, %dMB, %d process(es)" t.name t.image
    t.vcpus t.memory_mb t.processes
