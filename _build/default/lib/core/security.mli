(** The isolation analysis of Sections 2.2 and 3.4, quantified.

    Each platform draws its inter-container isolation boundary somewhere;
    what matters is the size of the trusted computing base behind that
    boundary and the width of the interface an attacker can poke at.
    This module tabulates both, plus whether the Meltdown-era page-table
    isolation is even needed on the platform's syscall path. *)

type boundary =
  | Host_kernel  (** shared monolithic kernel (Docker) *)
  | Userspace_kernel  (** the Sentry + a host-kernel fallback (gVisor) *)
  | Hypervisor_hvm  (** hardware virtualization (Clear, Xen HVM) *)
  | Hypervisor_pv  (** paravirtual hypervisor (Xen-Container, X-Container) *)
  | None_process  (** a plain process boundary (Graphene w/o SGX) *)

type profile = {
  runtime : Xc_platforms.Config.runtime;
  boundary : boundary;
  tcb_kloc : int;  (** code an attacker must not find a bug in *)
  attack_surface : int;  (** syscalls/hypercalls exposed across it *)
  needs_guest_meltdown_patch : bool;
  per_container_kernel : bool;  (** can a compromise stay contained? *)
}

val profile_of : Xc_platforms.Config.runtime -> profile
val all : profile list
val boundary_name : boundary -> string

val relative_tcb : Xc_platforms.Config.runtime -> float
(** TCB size relative to Docker's shared Linux kernel (lower is better:
    X-Containers come out around 0.016). *)

val vulnerability_exposure : profile -> float
(** A simple figure of merit: TCB kLoC times attack-surface width,
    normalised to Docker = 1.0.  Not a CVE predictor — a way to rank the
    designs on the two measures the paper argues from. *)
