(** Container specifications.

    The unit of deployment: a (single-concerned) container image plus the
    resources it gets.  Mirrors what the paper's Docker Wrapper consumes:
    a Docker image name and an X-LibOS configuration. *)

type t = {
  name : string;
  image : string;  (** e.g. ["nginx:1.13"] *)
  vcpus : int;
  memory_mb : int;
  processes : int;  (** worker processes the container spawns *)
}

val make :
  ?vcpus:int -> ?memory_mb:int -> ?processes:int -> name:string -> image:string ->
  unit -> t

val default_memory_mb : int
(** 128 MB, the Section 5.6 per-container configuration. *)

val validate : t -> (t, string) result
val pp : Format.formatter -> t -> unit
