(** Experiment harness: run configurations, normalise, tabulate.

    The paper reports nearly everything {i relative to patched Docker}
    with the mean and standard deviation of five runs.  This module
    provides exactly that workflow: run a measurement function over a
    configuration grid with several seeds, normalise against a chosen
    baseline, and render the result as a table. *)

type sample = { config_name : string; runs : float list }

type row = {
  config_name : string;
  mean : float;
  stddev : float;
  relative : float;  (** mean / baseline mean *)
}

val collect :
  names:'a list -> name_of:('a -> string) -> runs:int -> ('a -> seed:int -> float) ->
  sample list
(** Evaluate each configuration [runs] times with distinct seeds. *)

val normalise : baseline:string -> sample list -> row list
(** Normalise every row against the baseline's mean (baseline gets 1.0).
    Raises [Invalid_argument] if the baseline is missing or zero. *)

val to_table :
  ?title:string -> value_header:string -> row list -> Xc_sim.Table.t

val relative_of : row list -> string -> float option
(** Look up one configuration's relative value. *)
