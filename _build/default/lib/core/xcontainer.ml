module Xk = Xc_hypervisor.Xkernel

type t = {
  spec : Spec.t;
  image : Docker_wrapper.image;
  domain : Xc_hypervisor.Domain.t;
  libos : Xc_os.Kernel.t;
  patcher : Xc_abom.Patcher.t;
  boot_time : Boot.breakdown;
  machine : Xc_isa.Machine.t option;
  entry : int;
}

let boot ?(toolstack = Boot.Xl) ~xkernel spec =
  match Spec.validate spec with
  | Error e -> Error e
  | Ok spec -> begin
      match Docker_wrapper.pull spec.Spec.image with
      | Error e -> Error e
      | Ok image -> begin
          match
            Xk.create_domain xkernel ~vcpus:spec.Spec.vcpus
              ~memory_mb:spec.Spec.memory_mb
          with
          | Error e -> Error e
          | Ok domain ->
              let libos = Xc_os.Kernel.create ~config:Xc_os.Kernel.xlibos_config () in
              (* The bootloader spawns the container's processes directly,
                 without any init system (Section 4.5). *)
              let process_count =
                Stdlib.max spec.Spec.processes
                  (Docker_wrapper.bootloader_process_count image)
              in
              for _ = 1 to process_count do
                ignore (Xc_os.Kernel.spawn libos)
              done;
              let table = Xc_abom.Entry_table.create () in
              let patcher = Xc_abom.Patcher.create table in
              let machine, entry =
                match image.Docker_wrapper.entry_program with
                | Some prog ->
                    let config = Xc_abom.Patcher.machine_config patcher () in
                    ( Some
                        (Xc_isa.Machine.create ~config prog.Xc_isa.Builder.image
                           ~entry:prog.Xc_isa.Builder.entry),
                      prog.Xc_isa.Builder.entry )
                | None -> (None, 0)
              in
              Ok
                {
                  spec;
                  image;
                  domain;
                  libos;
                  patcher;
                  boot_time = Boot.xcontainer ~toolstack ();
                  machine;
                  entry;
                }
        end
    end

let shutdown ~xkernel t = Xk.destroy_domain xkernel t.domain
let spec t = t.spec
let image t = t.image
let domain t = t.domain
let libos t = t.libos
let patcher t = t.patcher
let boot_time t = t.boot_time
let processes t = Xc_os.Kernel.processes t.libos

let exec_program ?(repeat = 1) t =
  match t.machine with
  | None -> Error "image has no entry program"
  | Some machine ->
      let rec go i last =
        if i >= repeat then Ok last
        else begin
          Xc_isa.Machine.reset machine ~entry:t.entry;
          match Xc_isa.Machine.run machine with
          | Xc_isa.Machine.Halted -> go (i + 1) Xc_isa.Machine.Halted
          | other -> Ok other
        end
      in
      go 0 Xc_isa.Machine.Halted

type syscall_stats = {
  total : int;
  via_trap : int;
  via_function_call : int;
  reduction : float;
}

let syscall_stats t =
  match t.machine with
  | None -> { total = 0; via_trap = 0; via_function_call = 0; reduction = 0. }
  | Some machine ->
      let events = Xc_isa.Machine.events machine in
      let traps = List.length (List.filter (fun e -> e.Xc_isa.Machine.kind = `Trap) events) in
      let fast = List.length events - traps in
      let total = List.length events in
      {
        total;
        via_trap = traps;
        via_function_call = fast;
        reduction = (if total = 0 then 0. else float_of_int fast /. float_of_int total);
      }

let profile t =
  Option.map Xc_abom.Profile.of_machine t.machine

let service_time_ns t ~platform =
  Option.map
    (fun recipe -> Xc_apps.Recipe.service_ns platform recipe)
    t.image.Docker_wrapper.recipe
