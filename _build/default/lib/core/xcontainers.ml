(** X-Containers: the public umbrella.

    A reproduction of "X-Containers: Breaking Down Barriers to Improve
    Performance and Isolation of Cloud-Native Containers" (Shen et al.,
    ASPLOS 2019) as a deterministic architectural simulation.

    Quickstart:
    {[
      let xk = Xc_hypervisor.Xkernel.create ~pcpus:4 ~memory_mb:16384 () in
      let spec = Xcontainers.Spec.make ~name:"web" ~image:"nginx:1.13" () in
      match Xcontainers.Xcontainer.boot ~xkernel:xk spec with
      | Ok xc ->
          ignore (Xcontainers.Xcontainer.exec_program ~repeat:100 xc);
          let s = Xcontainers.Xcontainer.syscall_stats xc in
          Format.printf "ABOM converted %.1f%% of syscalls@." (100. *. s.reduction)
      | Error e -> prerr_endline e
    ]}

    The substrate libraries are re-exported here for convenience. *)

module Spec = Spec
module Boot = Boot
module Docker_wrapper = Docker_wrapper
module Xcontainer = Xcontainer
module Experiment = Experiment
module Figures = Figures
module Security = Security
module Cloning = Cloning
module Storage = Storage
module Inventory = Inventory

(* Substrates. *)
module Sim = Xc_sim
module Isa = Xc_isa
module Abom = Xc_abom
module Mem = Xc_mem
module Cpu = Xc_cpu
module Os = Xc_os
module Net = Xc_net
module Hypervisor = Xc_hypervisor
module Platforms = Xc_platforms
module Apps = Xc_apps
