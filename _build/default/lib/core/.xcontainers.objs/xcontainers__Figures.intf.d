lib/core/figures.mli: Boot Xc_apps Xc_platforms
