lib/core/inventory.mli: Format
