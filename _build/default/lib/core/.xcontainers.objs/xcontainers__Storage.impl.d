lib/core/storage.ml: Hashtbl List Printf
