lib/core/cloning.ml: Boot Xc_cpu
