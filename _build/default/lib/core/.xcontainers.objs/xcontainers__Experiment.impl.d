lib/core/experiment.ml: List Option Xc_sim
