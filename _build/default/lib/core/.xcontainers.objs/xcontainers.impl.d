lib/core/xcontainers.ml: Boot Cloning Docker_wrapper Experiment Figures Inventory Security Spec Storage Xc_abom Xc_apps Xc_cpu Xc_hypervisor Xc_isa Xc_mem Xc_net Xc_os Xc_platforms Xc_sim Xcontainer
