lib/core/security.ml: List Xc_hypervisor Xc_platforms
