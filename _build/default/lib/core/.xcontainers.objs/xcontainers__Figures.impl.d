lib/core/figures.ml: Boot List Option Xc_apps Xc_platforms
