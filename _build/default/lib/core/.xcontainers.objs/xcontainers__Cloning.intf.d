lib/core/cloning.mli:
