lib/core/security.mli: Xc_platforms
