lib/core/boot.ml: Format List Printf Xc_hypervisor
