lib/core/storage.mli:
