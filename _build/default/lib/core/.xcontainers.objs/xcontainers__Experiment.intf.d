lib/core/experiment.mli: Xc_sim
