lib/core/inventory.ml: Format List
