lib/core/boot.mli: Format
