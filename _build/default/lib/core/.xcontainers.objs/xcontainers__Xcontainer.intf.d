lib/core/xcontainer.mli: Boot Docker_wrapper Spec Xc_abom Xc_hypervisor Xc_isa Xc_os Xc_platforms
