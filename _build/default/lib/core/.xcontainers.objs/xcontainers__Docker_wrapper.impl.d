lib/core/docker_wrapper.ml: List Printf String Xc_apps Xc_isa
