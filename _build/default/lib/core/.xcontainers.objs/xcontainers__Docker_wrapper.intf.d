lib/core/docker_wrapper.mli: Xc_apps Xc_isa
