lib/core/xcontainer.ml: Boot Docker_wrapper List Option Spec Stdlib Xc_abom Xc_apps Xc_hypervisor Xc_isa Xc_os
