module Config = Xc_platforms.Config
module Platform = Xc_platforms.Platform
module Closed_loop = Xc_platforms.Closed_loop
module Unixbench = Xc_apps.Unixbench

(* Figure 3 *)

type macro_app = Nginx_ab | Memcached_app | Redis_app

let macro_app_name = function
  | Nginx_ab -> "NGINX"
  | Memcached_app -> "Memcached"
  | Redis_app -> "Redis"

let macro_apps = [ Nginx_ab; Memcached_app; Redis_app ]

type macro_result = {
  config : Config.t;
  throughput_rps : float;
  mean_latency_ns : float;
  p99_latency_ns : float;
}

(* The cloud instances expose 4 cores (8 threads); gVisor cannot run more
   than one process concurrently (Section 2.3). *)
let cores = 4

let clamp_units config units =
  if Config.supports config.Config.runtime Config.Multicore then units else 1

let server_for config platform app : Closed_loop.server =
  let s =
    match app with
    | Nginx_ab -> Xc_apps.Nginx.server ~workers:4 ~keepalive:false ~cores platform
    | Memcached_app -> Xc_apps.Memcached.server ~threads:4 ~cores platform
    | Redis_app -> Xc_apps.Redis.server ~cores platform
  in
  { s with units = clamp_units config s.Closed_loop.units }

(* Server builders for the extended application sweep (harness use). *)
let server_for_public (config : Config.t) platform app : Closed_loop.server =
  let clamp (s : Closed_loop.server) =
    { s with units = clamp_units config s.Closed_loop.units }
  in
  clamp
    (match app with
    | `Nginx -> Xc_apps.Nginx.server ~workers:4 ~keepalive:false ~cores platform
    | `Memcached -> Xc_apps.Memcached.server ~threads:4 ~cores platform
    | `Redis -> Xc_apps.Redis.server ~cores platform
    | `Etcd -> Xc_apps.Etcd.server ~cores platform
    | `Mongo -> Xc_apps.Mongodb.server ~cores platform
    | `Postgres -> Xc_apps.Postgres.server ~cores platform
    | `Rabbitmq -> Xc_apps.Rabbitmq.server ~cores platform
    | `Mysql -> Xc_apps.Mysql.server ~cores platform
    | `Fluentd -> Xc_apps.Fluentd.server ~cores platform
    | `Elasticsearch -> Xc_apps.Elasticsearch.server ~cores platform
    | `Influxdb -> Xc_apps.Influxdb.server ~cores platform)

let fig3 ?(seed = 42) cloud app =
  List.map
    (fun config ->
      let platform = Platform.create config in
      let server = server_for config platform app in
      let workload =
        match app with
        | Nginx_ab -> Xc_apps.Workloads.ab
        | Memcached_app -> Xc_apps.Workloads.memtier
        | Redis_app -> Xc_apps.Workloads.redis_bench
      in
      let result =
        Closed_loop.run
          (Xc_apps.Workloads.closed_loop_config ~seed workload)
          server
      in
      {
        config;
        throughput_rps = result.Closed_loop.throughput_rps;
        mean_latency_ns = result.Closed_loop.mean_latency_ns;
        p99_latency_ns = result.Closed_loop.p99_ns;
      })
    (Config.ten_configurations cloud)

let baseline_name = "Docker"

let relative_of results value =
  let base =
    match
      List.find_opt (fun r -> Config.name r.config = baseline_name) results
    with
    | Some r -> value r
    | None -> invalid_arg "no patched Docker baseline in results"
  in
  List.map (fun r -> (Config.name r.config, value r /. base)) results

let relative_throughput results = relative_of results (fun r -> r.throughput_rps)
let relative_latency results = relative_of results (fun r -> r.mean_latency_ns)

(* Figures 4 and 5 *)

let micro_rate config ~concurrent test =
  let platform = Platform.create config in
  if concurrent then Unixbench.concurrent_rate platform ~copies:4 test
  else Unixbench.rate platform test

let micro_relative cloud ~concurrent test =
  let configs = Config.ten_configurations cloud in
  let rates =
    List.map (fun c -> (Config.name c, micro_rate c ~concurrent test)) configs
  in
  let base =
    match List.assoc_opt baseline_name rates with
    | Some v -> v
    | None -> invalid_arg "no patched Docker baseline"
  in
  List.map (fun (n, v) -> (n, v /. base)) rates

let fig4 cloud ~concurrent = micro_relative cloud ~concurrent Unixbench.Syscall_rate
let fig5 cloud ~concurrent test = micro_relative cloud ~concurrent test

(* Figure 6 *)

type fig6 = {
  nginx_1worker : (string * float) list;
  nginx_4workers : (string * float) list;
  php_mysql : (string * string * float) list;
}

let fig6 () =
  let module S = Xc_apps.Serverless in
  let contenders = [ S.G; S.U; S.X ] in
  {
    nginx_1worker =
      List.map (fun c -> (S.contender_name c, S.nginx_one_worker c)) contenders;
    nginx_4workers =
      List.filter_map
        (fun c ->
          Option.map (fun v -> (S.contender_name c, v)) (S.nginx_four_workers c))
        contenders;
    php_mysql =
      List.concat_map
        (fun c ->
          List.filter_map
            (fun topo ->
              Option.map
                (fun v -> (S.contender_name c, S.topology_name topo, v))
                (S.php_mysql c topo))
            [ S.Shared; S.Dedicated; S.Dedicated_merged ])
        contenders;
  }

(* Figure 8 *)

let fig8_runtimes = [ Config.Docker; Config.X_container; Config.Xen_hvm; Config.Xen_pv ]

let fig8 () =
  List.map
    (fun runtime ->
      (runtime, Xc_apps.Scalability.sweep runtime Xc_apps.Scalability.default_counts))
    fig8_runtimes

(* Figure 9 *)

let fig9 () = List.map Xc_apps.Lb_experiment.run Xc_apps.Lb_experiment.all

(* Table 1 *)

let table1 ?(invocations = 50_000) () =
  List.map (fun p -> Xc_apps.Profiles.measure ~invocations p) Xc_apps.Profiles.all

(* Boot times *)

type boot_row = { label : string; breakdown : Boot.breakdown }

let boot_times () =
  [
    { label = "Docker container"; breakdown = Boot.docker () };
    { label = "X-Container (xl toolstack)"; breakdown = Boot.xcontainer () };
    {
      label = "X-Container (LightVM toolstack)";
      breakdown = Boot.xcontainer ~toolstack:Boot.Lightvm ();
    };
    { label = "Full Xen VM (Ubuntu guest)"; breakdown = Boot.xen_vm () };
  ]
