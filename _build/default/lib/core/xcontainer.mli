(** A running X-Container.

    The top of the stack: an X-Kernel domain running one X-LibOS and the
    container's processes, with a live ABOM patcher attached to the
    domain's syscall trap path.  [exec_program] actually executes the
    container's binary on the ISA machine — the first syscall at each
    site traps and is rewritten, subsequent ones are function calls —
    and [syscall_stats] reports what the paper's Section 5.2 counter
    reported. *)

type t

val boot :
  ?toolstack:Boot.toolstack ->
  xkernel:Xc_hypervisor.Xkernel.t ->
  Spec.t ->
  (t, string) result
(** Create the domain, boot the X-LibOS, run the bootloader.  Fails when
    the spec is invalid, the image unknown, or host memory exhausted. *)

val shutdown : xkernel:Xc_hypervisor.Xkernel.t -> t -> unit

val spec : t -> Spec.t
val image : t -> Docker_wrapper.image
val domain : t -> Xc_hypervisor.Domain.t
val libos : t -> Xc_os.Kernel.t
val patcher : t -> Xc_abom.Patcher.t
val boot_time : t -> Boot.breakdown
val processes : t -> Xc_os.Process.t list

val exec_program : ?repeat:int -> t -> (Xc_isa.Machine.exit_reason, string) result
(** Run the image's entry binary [repeat] times (default 1) under ABOM. *)

type syscall_stats = {
  total : int;
  via_trap : int;
  via_function_call : int;
  reduction : float;  (** fraction converted, as in Table 1 *)
}

val syscall_stats : t -> syscall_stats

val profile : t -> Xc_abom.Profile.t option
(** The full syscall profile of the container's executions ([None] when
    the image carries no entry program). *)

val service_time_ns : t -> platform:Xc_platforms.Platform.t -> float option
(** Per-request service time of the image's recipe on a platform. *)
