(** The paper's evaluation figures as runnable experiments.

    One function per figure/table of Section 5, returning structured
    results; the benchmark harness renders them as tables and the test
    suite asserts their shapes (who wins, by roughly what factor).  All
    runs are deterministic given the seed. *)

module Config = Xc_platforms.Config

(** {2 Figure 3: macrobenchmarks} *)

type macro_app = Nginx_ab | Memcached_app | Redis_app

val macro_app_name : macro_app -> string
val macro_apps : macro_app list

type macro_result = {
  config : Config.t;
  throughput_rps : float;
  mean_latency_ns : float;
  p99_latency_ns : float;
}

val fig3 : ?seed:int -> Config.cloud -> macro_app -> macro_result list
(** All ten configurations of Section 5.1 on one cloud. *)

val server_for_public :
  Config.t ->
  Xc_platforms.Platform.t ->
  [ `Nginx
  | `Memcached
  | `Redis
  | `Etcd
  | `Mongo
  | `Postgres
  | `Rabbitmq
  | `Mysql
  | `Fluentd
  | `Elasticsearch
  | `Influxdb ] ->
  Xc_platforms.Closed_loop.server
(** A closed-loop server for any modelled application, with the
    platform's multicore capability respected (used by the extended
    macro sweep bench). *)

val relative_throughput : macro_result list -> (string * float) list
(** Normalised to patched Docker (higher is better). *)

val relative_latency : macro_result list -> (string * float) list
(** Normalised to patched Docker (lower is better). *)

(** {2 Figures 4 and 5: microbenchmarks} *)

val fig4 : Config.cloud -> concurrent:bool -> (string * float) list
(** Relative system-call throughput, normalised to patched Docker. *)

val fig5 :
  Config.cloud -> concurrent:bool -> Xc_apps.Unixbench.test ->
  (string * float) list
(** One Figure 5 panel group: relative score per configuration. *)

(** {2 Figure 6: LibOS comparison} *)

type fig6 = {
  nginx_1worker : (string * float) list;  (** G/U/X requests per second *)
  nginx_4workers : (string * float) list;  (** G/X *)
  php_mysql : (string * string * float) list;
      (** contender, topology, requests per second *)
}

val fig6 : unit -> fig6

(** {2 Figure 8: scalability} *)

val fig8_runtimes : Config.runtime list
val fig8 : unit -> (Config.runtime * Xc_apps.Scalability.point list) list

(** {2 Figure 9: load balancing} *)

val fig9 : unit -> Xc_apps.Lb_experiment.result list

(** {2 Table 1} *)

val table1 : ?invocations:int -> unit -> Xc_apps.Profiles.measurement list

(** {2 Section 4.5: boot times} *)

type boot_row = { label : string; breakdown : Boot.breakdown }

val boot_times : unit -> boot_row list
