(** Instance start-up time (Section 4.5).

    The paper measures a 180 ms kernel boot to a single bash process, but
    the stock Xen "xl" toolstack inflates total instantiation to ~3 s;
    LightVM's redesigned toolstack would cut the toolstack share to 4 ms.
    Docker starts in ~hundreds of ms on a shared kernel. *)

type toolstack = Xl | Lightvm

type breakdown = {
  toolstack_ns : float;
  kernel_boot_ns : float;
  bootloader_ns : float;  (** the Docker-Wrapper bootloader spawning the
                              container's processes *)
  total_ns : float;
}

val xcontainer : ?toolstack:toolstack -> unit -> breakdown
val docker : unit -> breakdown
val xen_vm : unit -> breakdown
(** A full Ubuntu guest: kernel + init system. *)

val xl_toolstack_estimate_ns : unit -> float
(** Rebuild the xl toolstack cost bottom-up: run the actual XenStore
    domain introduction and the vif/vbd/console device handshakes
    (via {!Xc_hypervisor.Xenstore}), price each serialised operation,
    and add the fixed domctl/xl-process share.  Lands near the 2.82 s
    the top-down model uses — the Section 4.5 3-second total explained
    by its mechanism. *)

val pp : Format.formatter -> breakdown -> unit
