type layer_id = string

type t = {
  layers : (layer_id, string) Hashtbl.t;
  images : (string, layer_id list) Hashtbl.t;
}

let create () = { layers = Hashtbl.create 16; images = Hashtbl.create 8 }

(* Content addressing via a simple stable hash (not cryptographic; the
   model only needs dedup). *)
let digest content = Printf.sprintf "sha-%08x" (Hashtbl.hash content)

let add_layer t ~content =
  let id = digest content in
  if not (Hashtbl.mem t.layers id) then Hashtbl.add t.layers id content;
  id

let layer_count t = Hashtbl.length t.layers

let define_image t ~name ~layers =
  if List.for_all (Hashtbl.mem t.layers) layers then begin
    Hashtbl.replace t.images name layers;
    Ok ()
  end
  else Error "image references a missing layer"

let image_layers t ~name = Hashtbl.find_opt t.images name

type snapshot = {
  pool : t;
  base : layer_id list;
  delta : (int, string) Hashtbl.t;
}

let snapshot t ~image =
  match image_layers t ~name:image with
  | None -> Error ("no such image: " ^ image)
  | Some base -> Ok { pool = t; base; delta = Hashtbl.create 8 }

let write_block s ~block content = Hashtbl.replace s.delta block content

let read_block s ~block =
  match Hashtbl.find_opt s.delta block with
  | Some v -> Some v
  | None -> begin
      match List.nth_opt s.base block with
      | Some layer -> Hashtbl.find_opt s.pool.layers layer
      | None -> None
    end

let dirty_blocks s = Hashtbl.length s.delta

let shared_with t ~name_a ~name_b =
  match (image_layers t ~name:name_a, image_layers t ~name:name_b) with
  | Some a, Some b -> List.length (List.filter (fun l -> List.mem l b) a)
  | _ -> 0

let snapshot_setup_cost_ns () = 250_000. (* dm thin snapshot: metadata only *)
