(** The device-mapper storage back-end (Section 5.1: "All configurations
    used device-mapper as the back-end storage driver").

    Docker images are stacks of content-addressed layers; each container
    gets a thin copy-on-write snapshot on top.  The model tracks layer
    sharing and per-container dirty blocks so experiments can reason
    about image distribution and snapshot costs. *)

type layer_id = string

type t
(** A storage pool. *)

val create : unit -> t

val add_layer : t -> content:string -> layer_id
(** Store a layer; identical content dedups to the same id. *)

val layer_count : t -> int

val define_image : t -> name:string -> layers:layer_id list -> (unit, string) result
(** All layers must exist. *)

val image_layers : t -> name:string -> layer_id list option

type snapshot

val snapshot : t -> image:string -> (snapshot, string) result
(** A container's writable view on top of an image. *)

val write_block : snapshot -> block:int -> string -> unit
(** Copy-on-write: the first write to a block copies it into the
    container's private delta. *)

val read_block : snapshot -> block:int -> string option
(** Reads see the container's delta first, then the image content
    (block [i] of the concatenated layers, 1 block per layer here). *)

val dirty_blocks : snapshot -> int

val shared_with : t -> name_a:string -> name_b:string -> int
(** Number of layers two images share (the pull/dedup win). *)

val snapshot_setup_cost_ns : unit -> float
(** Constant-time snapshot creation — the device-mapper property that
    makes container spawning cheap regardless of image size. *)
