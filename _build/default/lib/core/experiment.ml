type sample = { config_name : string; runs : float list }

type row = {
  config_name : string;
  mean : float;
  stddev : float;
  relative : float;
}

let collect ~names ~name_of ~runs f =
  List.map
    (fun config ->
      {
        config_name = name_of config;
        runs = List.init runs (fun i -> f config ~seed:(1000 + (i * 97)));
      })
    names

let normalise ~baseline samples =
  let stats_of (s : sample) = Xc_sim.Stats.of_list s.runs in
  let base =
    match List.find_opt (fun (s : sample) -> s.config_name = baseline) samples with
    | Some s -> Xc_sim.Stats.mean (stats_of s)
    | None -> invalid_arg ("Experiment.normalise: no baseline " ^ baseline)
  in
  if base = 0. then invalid_arg "Experiment.normalise: baseline mean is zero";
  List.map
    (fun s ->
      let st = stats_of s in
      {
        config_name = s.config_name;
        mean = Xc_sim.Stats.mean st;
        stddev = Xc_sim.Stats.stddev st;
        relative = Xc_sim.Stats.mean st /. base;
      })
    samples

let to_table ?title ~value_header rows =
  let open Xc_sim.Table in
  let t =
    create ?title
      [
        ("configuration", Left);
        (value_header, Right);
        ("stddev", Right);
        ("relative", Right);
      ]
  in
  List.iter
    (fun r ->
      add_row t
        [
          r.config_name;
          fmt_si r.mean;
          fmt_si r.stddev;
          fmt_ratio r.relative;
        ])
    rows;
  t

let relative_of rows name =
  List.find_opt (fun r -> r.config_name = name) rows
  |> Option.map (fun r -> r.relative)
