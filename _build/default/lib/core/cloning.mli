(** Instance cloning (Section 4.5 "Spawning speed of new instances").

    The paper cites VM cloning (SnowFlock, VMPlants) as the way to cut
    the X-LibOS boot out of the start-up path: fork new instances from a
    booted parent snapshot, faulting memory in on demand.  This model
    lets the harness compare cold boots against clones. *)

type snapshot

val snapshot_of_parent :
  memory_mb:int -> resident_pages:int -> snapshot
(** Capture a booted parent: only its resident working set must be
    materialised eagerly in a clone. *)

val snapshot_memory_mb : snapshot -> int

type clone_breakdown = {
  toolstack_ns : float;  (** LightVM-style: descriptor setup only *)
  page_sharing_setup_ns : float;  (** mark parent pages copy-on-write *)
  eager_copy_ns : float;  (** the resident set faulted at start *)
  total_ns : float;
}

val clone : snapshot -> clone_breakdown

val speedup_vs_cold_boot : snapshot -> float
(** Clone total vs the xl-toolstack cold boot of Section 4.5. *)

val speedup_vs_lightvm_boot : snapshot -> float
