type image = {
  name : string;
  entry_program : Xc_isa.Builder.program option;
  recipe : Xc_apps.Recipe.t option;
}

(* A plausible glibc-wrapped server binary for ABOM-level runs. *)
let server_program () =
  Xc_isa.Builder.build
    [
      (Xc_isa.Builder.Glibc_small, 0);
      (Xc_isa.Builder.Glibc_small, 1);
      (Xc_isa.Builder.Glibc_small, 232);
      (Xc_isa.Builder.Glibc_wide, 45);
      (Xc_isa.Builder.Glibc_wide, 44);
      (Xc_isa.Builder.Glibc_small, 3);
    ]

let registry () =
  [
    {
      name = "nginx:1.13";
      entry_program = Some (server_program ());
      recipe = Some Xc_apps.Nginx.static_request_ab;
    };
    {
      name = "memcached:1.5.7";
      entry_program = Some (server_program ());
      recipe = Some Xc_apps.Memcached.mixed_request;
    };
    {
      name = "redis:3.2.11";
      entry_program = Some (server_program ());
      recipe = Some Xc_apps.Redis.request;
    };
    {
      name = "mysql:5.7";
      entry_program =
        Some
          (Xc_isa.Builder.build
             [
               (Xc_isa.Builder.Glibc_small, 232);
               (Xc_isa.Builder.Cancellable, 0);
               (Xc_isa.Builder.Cancellable, 1);
               (Xc_isa.Builder.Glibc_wide, 3);
             ]);
      recipe = Some (Xc_apps.Mysql.mixed_query ~offline_patched:false);
    };
    {
      name = "php:7-cgi";
      entry_program = Some (server_program ());
      recipe = Some (Xc_apps.Php_app.cgi_request ~queries:1);
    };
    {
      name = "haproxy:1.7.5";
      entry_program = Some (server_program ());
      recipe = None;
    };
    { name = "ubuntu-bash"; entry_program = None; recipe = None };
  ]

let pull name =
  let base s = match String.index_opt s ':' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let images = registry () in
  match
    List.find_opt (fun i -> i.name = name) images
  with
  | Some i -> Ok i
  | None -> begin
      match List.find_opt (fun i -> base i.name = base name) images with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "image %S not found in registry" name)
    end

let bootloader_process_count image =
  match image.name with
  | "mysql:5.7" -> 1
  | "nginx:1.13" -> 2 (* master + worker *)
  | _ -> 1
