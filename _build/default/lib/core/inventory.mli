(** The machine-readable experiment inventory.

    DESIGN.md's experiment index, as data: every paper table/figure and
    every beyond-paper extension, with its bench target and the modules
    that implement it.  The CLI lists it; a test asserts the registry
    and the benchmark harness agree. *)

type kind = Paper_table | Paper_figure | Paper_section | Extension

type entry = {
  id : string;  (** bench target name, e.g. ["fig4"] *)
  kind : kind;
  paper_ref : string;  (** e.g. ["Table 1"], ["Figure 8"], ["§4.5"] *)
  title : string;
  modules : string list;  (** implementing modules *)
}

val all : entry list
val find : string -> entry option
val paper_entries : entry list
val extension_entries : entry list
val kind_name : kind -> string
val pp_entry : Format.formatter -> entry -> unit
