(** A simplified Xen credit scheduler.

    vCPUs receive credits proportional to their weight each accounting
    period and are debited while running; vCPUs with positive credit
    (UNDER) run before those that overdrew (OVER).  We reproduce enough
    of the mechanism to (a) unit-test fairness, and (b) expose the
    per-switch cost model used by the hierarchical-scheduling analysis of
    Figure 8. *)

type t

val create : pcpus:int -> t
val pcpus : t -> int

val attach : t -> Vcpu.t -> weight:int -> unit
val detach : t -> Vcpu.t -> unit
val vcpu_count : t -> int

val accounting_tick : t -> unit
(** Refill credits proportionally to weights (one 30ms Xen period). *)

val pick_next : t -> pcpu:int -> Vcpu.t option
(** Choose the next vCPU for a physical core: runnable, UNDER before
    OVER, round-robin within a priority class.  Debits nothing. *)

val run_slice : t -> Vcpu.t -> ns:float -> unit
(** Account [ns] of execution: debit credits, accumulate runtime. *)

val switch_cost_ns : runnable_vcpus:int -> float
(** Cost of one vCPU switch: fixed context save/restore plus runqueue
    bookkeeping growing with queue length. *)

val fairness_ratio : t -> float
(** max/min runtime across attached vCPUs with equal weights (1.0 is
    perfectly fair); 1.0 when fewer than two vCPUs. *)
