type error = Maps_hypervisor_frame | Writable_page_table | Not_owned_frame

type t = {
  hypercalls : Hypercall.t;
  hypervisor_frames : int -> bool;
  owned : domain_id:int -> pfn:int -> bool;
  page_table_frame : int -> bool;
  mutable validated : int;
  mutable rejected : int;
}

let create ~hypercalls ~hypervisor_frames ~owned ~page_table_frame =
  {
    hypercalls;
    hypervisor_frames;
    owned;
    page_table_frame;
    validated = 0;
    rejected = 0;
  }

let per_entry_ns = 45.

let batch_cost_ns n =
  Hypercall.cost_ns Mmu_update +. (per_entry_ns *. float_of_int n)

let validate t ~domain_id (vpn, pte) =
  let pfn = pte.Xc_mem.Pte.pfn in
  if t.hypervisor_frames pfn then Error (Maps_hypervisor_frame, vpn)
  else if not (t.owned ~domain_id ~pfn) then Error (Not_owned_frame, vpn)
  else if t.page_table_frame pfn && pte.Xc_mem.Pte.writable then
    Error (Writable_page_table, vpn)
  else Ok ()

let update t ~domain_id ~table ~entries =
  let rec check = function
    | [] -> Ok ()
    | entry :: rest -> begin
        match validate t ~domain_id entry with
        | Ok () -> check rest
        | Error _ as e -> e
      end
  in
  match check entries with
  | Error (err, vpn) ->
      t.rejected <- t.rejected + 1;
      Error (err, vpn)
  | Ok () ->
      ignore (Hypercall.invoke t.hypercalls Mmu_update);
      List.iter (fun (vpn, pte) -> Xc_mem.Page_table.map table ~vpn pte) entries;
      t.validated <- t.validated + List.length entries;
      Ok (batch_cost_ns (List.length entries))

let validated_entries t = t.validated
let rejected_batches t = t.rejected

let error_to_string = function
  | Maps_hypervisor_frame -> "maps-hypervisor-frame"
  | Writable_page_table -> "writable-page-table"
  | Not_owned_frame -> "not-owned-frame"
