type kind = Dom0 | Domu | Driver_domain
type state = Created | Running | Paused | Shutdown

type t = {
  id : int;
  kind : kind;
  vcpus : Vcpu.t array;
  memory_mb : int;
  mutable state : state;
}

let create ~id ~kind ~vcpus ~memory_mb =
  if vcpus <= 0 then invalid_arg "Domain.create: need at least one vcpu";
  if memory_mb <= 0 then invalid_arg "Domain.create: need positive memory";
  {
    id;
    kind;
    vcpus = Array.init vcpus (fun i -> Vcpu.create ~id:i ~domain_id:id);
    memory_mb;
    state = Created;
  }

let id t = t.id
let kind t = t.kind
let vcpus t = t.vcpus
let memory_mb t = t.memory_mb
let state t = t.state
let set_state t s = t.state <- s
let is_privileged t = t.kind = Dom0
