(** Virtual CPUs.

    Xen schedules vCPUs onto physical cores; the guest kernel schedules
    processes onto vCPUs.  This two-level split is what makes Figure 8
    interesting: with N containers of 4 processes each, the X-Kernel
    schedules N vCPUs while a Docker host schedules 4N processes. *)

type state = Runnable | Running | Blocked

type t

val create : id:int -> domain_id:int -> t
val id : t -> int
val domain_id : t -> int
val state : t -> state
val set_state : t -> state -> unit

val credit : t -> int
val set_credit : t -> int -> unit
val consume_credit : t -> int -> unit

val runtime_ns : t -> float
val add_runtime : t -> float -> unit
