(** The hypercall interface.

    The paper's isolation argument rests on the exokernel exposing "a
    small number of well-documented system calls" (Section 3): the
    hypercall table below is the whole attack surface of the X-Kernel,
    versus ~350 syscalls for a monolithic Linux host.  Each hypercall has
    a modelled cost; counts are kept per table so experiments can report
    how often the kernel boundary was crossed. *)

type kind =
  | Mmu_update  (** batched validated page-table writes *)
  | Mmuext_op  (** TLB flushes, pin/unpin tables *)
  | Update_va_mapping
  | Set_trap_table
  | Sched_op  (** yield/block *)
  | Event_channel_op
  | Grant_table_op  (** shared-memory grants for split drivers *)
  | Iret  (** return-from-interrupt for stock PV guests *)
  | Set_segment_base
  | Console_io
  | Domctl  (** domain management (toolstack only) *)

val all : kind list
val name : kind -> string

val cost_ns : kind -> float
(** Cost of one invocation (trap + validation + work). *)

type t
(** A per-hypervisor invocation counter. *)

val create : unit -> t

val invoke : t -> kind -> float
(** Count one invocation and return its cost. *)

val invocations : t -> kind -> int
val total_invocations : t -> int
val surface_size : unit -> int
(** Number of distinct hypercalls = the attack surface (cf. Table TCB). *)
