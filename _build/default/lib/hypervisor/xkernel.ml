type abi = {
  kernel_user_isolated : bool;
  global_bit_allowed : bool;
  direct_event_delivery : bool;
  user_mode_iret : bool;
  abom_enabled : bool;
}

let stock_xen_abi =
  {
    kernel_user_isolated = true;
    global_bit_allowed = false;
    direct_event_delivery = false;
    user_mode_iret = false;
    abom_enabled = false;
  }

let xkernel_abi =
  {
    kernel_user_isolated = false;
    global_bit_allowed = true;
    direct_event_delivery = true;
    user_mode_iret = true;
    abom_enabled = true;
  }

type t = {
  abi : abi;
  pcpus : int;
  total_memory_mb : int;
  mutable used_memory_mb : int;
  hypercalls : Hypercall.t;
  scheduler : Credit_scheduler.t;
  mutable domains : Domain.t list;
  mutable next_domid : int;
  dom0 : Domain.t;
}

let dom0_memory_mb = 1024

let create ?(abi = xkernel_abi) ~pcpus ~memory_mb () =
  if memory_mb <= dom0_memory_mb then
    invalid_arg "Xkernel.create: not enough memory for Dom0";
  let dom0 = Domain.create ~id:0 ~kind:Dom0 ~vcpus:pcpus ~memory_mb:dom0_memory_mb in
  Domain.set_state dom0 Running;
  {
    abi;
    pcpus;
    total_memory_mb = memory_mb;
    used_memory_mb = dom0_memory_mb;
    hypercalls = Hypercall.create ();
    scheduler = Credit_scheduler.create ~pcpus;
    domains = [ dom0 ];
    next_domid = 1;
    dom0;
  }

let abi t = t.abi
let pcpus t = t.pcpus
let total_memory_mb t = t.total_memory_mb
let free_memory_mb t = t.total_memory_mb - t.used_memory_mb
let hypercalls t = t.hypercalls
let scheduler t = t.scheduler
let domains t = t.domains
let dom0 t = t.dom0

let create_domain t ~vcpus ~memory_mb =
  if memory_mb > free_memory_mb t then
    Error
      (Printf.sprintf "out of memory: need %dMB, %dMB free" memory_mb
         (free_memory_mb t))
  else begin
    let d =
      Domain.create ~id:t.next_domid ~kind:Domu ~vcpus ~memory_mb
    in
    t.next_domid <- t.next_domid + 1;
    t.used_memory_mb <- t.used_memory_mb + memory_mb;
    t.domains <- t.domains @ [ d ];
    Array.iter (fun v -> Credit_scheduler.attach t.scheduler v ~weight:256) (Domain.vcpus d);
    Domain.set_state d Running;
    Ok d
  end

let destroy_domain t d =
  if Domain.kind d = Dom0 then invalid_arg "cannot destroy Dom0";
  if List.memq d t.domains then begin
    t.domains <- List.filter (fun x -> x != d) t.domains;
    t.used_memory_mb <- t.used_memory_mb - Domain.memory_mb d;
    Array.iter (Credit_scheduler.detach t.scheduler) (Domain.vcpus d);
    Domain.set_state d Shutdown
  end

let syscall_forward_cost_ns t =
  if t.abi.kernel_user_isolated then Xc_cpu.Costs.xen_pv_syscall_ns
  else Xc_cpu.Costs.xc_forwarded_syscall_ns

let event_delivery t : Event_channel.delivery =
  if t.abi.direct_event_delivery then Direct_user_mode else Via_hypervisor

let iret_cost_ns t =
  if t.abi.user_mode_iret then Xc_cpu.Costs.xc_iret_ns
  else Xc_cpu.Costs.iret_hypercall_ns

(* Xen 4.2 is ~270 kLoC of hypervisor code; the X-Kernel adds a small
   patch on top.  A Linux host kernel is ~17 MLoC with ~350 syscalls. *)
let tcb_kloc _t = 280
let linux_host_tcb_kloc = 17_000
let linux_host_syscall_surface = 350
