(** Transcendent memory (Section 4.5).

    Xen's tmem lets guests put clean page-cache pages into a
    hypervisor-managed pool and get them back later — RAM that no guest
    owns but all can share.  Ephemeral pools may drop pages under
    pressure (a subsequent [get] misses and the guest re-reads from
    disk); the model tracks hit rates so experiments can quantify how
    much page cache X-Containers can share. *)

type t

val create : capacity_pages:int -> t
val capacity_pages : t -> int
val stored_pages : t -> int

val put : t -> domain_id:int -> key:int -> unit
(** Store a clean page.  When full, evicts the least-recently-put page
    (possibly from another domain: the pool is shared). *)

val get : t -> domain_id:int -> key:int -> [ `Hit | `Miss ]
(** Lookup; a hit removes the page (exclusive get, as in Xen's
    ephemeral pools). *)

val flush_domain : t -> domain_id:int -> int
(** Drop every page of a domain (domain shutdown); returns the count. *)

val hits : t -> int
val misses : t -> int

val hit_saving_ns : float
(** Time saved per hit versus re-reading the page from storage. *)
