(** The Xen split-driver I/O model.

    Device I/O goes through a front-end driver in the guest connected to a
    back-end in the driver domain over shared-memory descriptor rings,
    with event channels for notification (Section 4.1).  Both
    Xen-Containers and X-Containers use this path (with Xen-Blanket
    drivers in public clouds); the cost per operation is identical — the
    platforms differ on the {i syscall} path, not the driver path. *)

type t

val create :
  hypercalls:Hypercall.t -> events:Event_channel.t -> ring_slots:int -> t

val submit : t -> bytes_len:int -> (float, string) result
(** Submit one I/O request: grant the data pages, place a descriptor,
    notify.  Returns the front-end cost; [Error] when the ring is full. *)

val complete : t -> count:int -> float
(** Back-end completes [count] requests (oldest first); unmaps and
    revokes their grants, frees ring slots, and returns the back-end
    cost. *)

val in_flight : t -> int
val ring_slots : t -> int

val grants : t -> Grant_table.t
(** The front-end's grant table (every in-flight page is granted to the
    driver domain through it — inspectable in tests). *)
