type t = {
  domid : int;
  ring : Bytes.t;
  mask : int;
  mutable prod : int;  (** free-running producer index *)
  mutable cons : int;
  mutable dropped : int;
}

let create ?(ring_size = 2048) ~domid () =
  if ring_size <= 0 || ring_size land (ring_size - 1) <> 0 then
    invalid_arg "Console.create: ring size must be a power of two";
  {
    domid;
    ring = Bytes.make ring_size '\x00';
    mask = ring_size - 1;
    prod = 0;
    cons = 0;
    dropped = 0;
  }

let domid t = t.domid
let buffered t = t.prod - t.cons

let write t s =
  let capacity = Bytes.length t.ring in
  let n = ref 0 in
  String.iter
    (fun c ->
      if t.prod - t.cons < capacity then begin
        Bytes.set t.ring (t.prod land t.mask) c;
        t.prod <- t.prod + 1;
        incr n
      end
      else t.dropped <- t.dropped + 1)
    s;
  !n

let read_all t =
  let len = buffered t in
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Bytes.get t.ring ((t.cons + i) land t.mask))
  done;
  t.cons <- t.cons + len;
  Bytes.to_string out

let dropped t = t.dropped
