(** The paravirtualized MMU interface.

    Guests never write page tables directly: updates are submitted in
    batches and validated by the hypervisor (Section 4.1).  Validation is
    the security core of the exokernel: a guest must not map hypervisor
    frames, and must not gain writable access to its own page tables.
    This module models both the validation rules and the batch cost, which
    is why process creation and context switching keep a "noticeable
    overhead" on X-Containers (Section 5.4). *)

type error =
  | Maps_hypervisor_frame
  | Writable_page_table
  | Not_owned_frame

type t

val create :
  hypercalls:Hypercall.t ->
  hypervisor_frames:(int -> bool) ->
  owned:(domain_id:int -> pfn:int -> bool) ->
  page_table_frame:(int -> bool) ->
  t

val update :
  t ->
  domain_id:int ->
  table:Xc_mem.Page_table.t ->
  entries:(int * Xc_mem.Pte.t) list ->
  (float, error * int) result
(** Validate and apply a batch; on success, returns the cost (one
    hypercall + per-entry validation).  On failure, nothing is applied
    and the offending vpn is reported. *)

val batch_cost_ns : int -> float
(** Cost of a clean batch of [n] entries. *)

val validated_entries : t -> int
val rejected_batches : t -> int
val error_to_string : error -> string
