type t = {
  hypercalls : Hypercall.t;
  events : Event_channel.t;
  grants : Grant_table.t;
  ring_slots : int;
  mutable in_flight : (Grant_table.grant_ref list) list;
      (** grant refs of each outstanding request, oldest last *)
}

let port = 1
let backend_domain = 0 (* the driver domain maps our buffers *)

let create ~hypercalls ~events ~ring_slots =
  if ring_slots <= 0 then invalid_arg "Split_driver.create: ring_slots";
  Event_channel.bind events ~port;
  {
    hypercalls;
    events;
    grants = Grant_table.create ~owner:1 ~capacity:(ring_slots * 32);
    ring_slots;
    in_flight = [];
  }

let in_flight t = List.length t.in_flight
let ring_slots t = t.ring_slots

let submit t ~bytes_len =
  if in_flight t >= t.ring_slots then Error "ring full"
  else begin
    let pages = Stdlib.max 1 ((bytes_len + 4095) / 4096) in
    (* Grant each data page to the backend and let it map them: the real
       netfront/netback handshake, with the capability checks live. *)
    let rec grant_pages n acc =
      if n = 0 then Ok (List.rev acc)
      else begin
        match
          Grant_table.grant t.grants ~to_domain:backend_domain ~frame:(1000 + n)
            Grant_table.Read_only
        with
        | Ok r -> begin
            match Grant_table.map t.grants r ~by_domain:backend_domain with
            | Ok _ -> grant_pages (n - 1) (r :: acc)
            | Error e -> Error e
          end
        | Error e -> Error e
      end
    in
    match grant_pages pages [] with
    | Error e -> Error e
    | Ok refs ->
        t.in_flight <- refs :: t.in_flight;
        let grant_cost =
          float_of_int pages *. Hypercall.cost_ns Grant_table_op
        in
        let notify_cost = Event_channel.notify t.events ~port in
        ignore (Hypercall.invoke t.hypercalls Grant_table_op);
        Ok (grant_cost +. notify_cost +. Xc_cpu.Costs.cache_line_refill_ns)
  end

let complete t ~count =
  let count = Stdlib.min count (in_flight t) in
  (* [in_flight] holds newest first; complete the oldest [count]. *)
  let keep = in_flight t - count in
  let rec take n = function
    | [] -> ([], [])
    | x :: rest ->
        if n = 0 then ([], x :: rest)
        else begin
          let kept, done_ = take (n - 1) rest in
          (x :: kept, done_)
        end
  in
  let remaining, completed = take keep t.in_flight in
  t.in_flight <- remaining;
  let completed = ref completed in
  (* The backend unmaps; the frontend revokes and reclaims the refs. *)
  List.iter
    (fun refs ->
      List.iter
        (fun r ->
          (match Grant_table.unmap t.grants r ~by_domain:backend_domain with
          | Ok () -> ()
          | Error _ -> ());
          match Grant_table.revoke t.grants r with Ok () -> () | Error _ -> ())
        refs)
    !completed;
  let cost = Event_channel.deliver_pending t.events (fun _ -> ()) in
  cost +. (float_of_int count *. Xc_cpu.Costs.cache_line_refill_ns)

let grants t = t.grants
