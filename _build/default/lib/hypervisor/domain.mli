(** Xen domains.

    Domain-0 runs the toolstack and (conceptually) isolates drivers into
    driver domains; Domain-Us host guests — under the X-Kernel, each
    Domain-U {i is} an X-Container. *)

type kind = Dom0 | Domu | Driver_domain

type state = Created | Running | Paused | Shutdown

type t

val create :
  id:int -> kind:kind -> vcpus:int -> memory_mb:int -> t

val id : t -> int
val kind : t -> kind
val vcpus : t -> Vcpu.t array
val memory_mb : t -> int
val state : t -> state
val set_state : t -> state -> unit
val is_privileged : t -> bool
(** Only Domain-0 may issue domctl hypercalls. *)
