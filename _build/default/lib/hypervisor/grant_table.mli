(** Grant tables: the shared-memory capability system behind the split
    drivers.

    A guest grants a specific foreign domain access to one of its frames;
    the grantee maps it, and the granter can only revoke once the map
    count drops to zero.  This is the exokernel-style, explicitly
    delegated sharing that lets Domain-0/driver domains move packet
    buffers without owning all of memory. *)

type permission = Read_only | Read_write

type grant_ref = int

type t
(** One domain's grant table. *)

val create : owner:int -> capacity:int -> t
val owner : t -> int
val capacity : t -> int
val active_grants : t -> int

val grant : t -> to_domain:int -> frame:int -> permission -> (grant_ref, string) result
(** Fails when the table is full. *)

val map : t -> grant_ref -> by_domain:int -> (int * permission, string) result
(** The grantee maps the frame; fails for the wrong domain, an unknown
    reference, or a revoked grant.  Returns the frame and permission. *)

val unmap : t -> grant_ref -> by_domain:int -> (unit, string) result

val revoke : t -> grant_ref -> (unit, string) result
(** Fails while mappings are outstanding (the paper's Xen inherits this
    safety rule: no use-after-revoke). *)

val mappings : t -> grant_ref -> int
(** Outstanding map count (0 for unknown refs). *)
