type permission = Read_only | Read_write
type grant_ref = int

type entry = {
  to_domain : int;
  frame : int;
  permission : permission;
  mutable map_count : int;
  mutable revoked : bool;
}

type t = {
  owner : int;
  capacity : int;
  entries : (grant_ref, entry) Hashtbl.t;
  mutable next_ref : grant_ref;
}

let create ~owner ~capacity =
  if capacity <= 0 then invalid_arg "Grant_table.create: capacity";
  { owner; capacity; entries = Hashtbl.create 32; next_ref = 0 }

let owner t = t.owner
let capacity t = t.capacity

let active_grants t =
  Hashtbl.fold (fun _ e acc -> if e.revoked then acc else acc + 1) t.entries 0

let grant t ~to_domain ~frame permission =
  if active_grants t >= t.capacity then Error "grant table full"
  else begin
    let r = t.next_ref in
    t.next_ref <- r + 1;
    Hashtbl.add t.entries r
      { to_domain; frame; permission; map_count = 0; revoked = false };
    Ok r
  end

let lookup t r = Hashtbl.find_opt t.entries r

let map t r ~by_domain =
  match lookup t r with
  | None -> Error "unknown grant reference"
  | Some e ->
      if e.revoked then Error "grant revoked"
      else if e.to_domain <> by_domain then Error "grant is for another domain"
      else begin
        e.map_count <- e.map_count + 1;
        Ok (e.frame, e.permission)
      end

let unmap t r ~by_domain =
  match lookup t r with
  | None -> Error "unknown grant reference"
  | Some e ->
      if e.to_domain <> by_domain then Error "grant is for another domain"
      else if e.map_count = 0 then Error "not mapped"
      else begin
        e.map_count <- e.map_count - 1;
        Ok ()
      end

let revoke t r =
  match lookup t r with
  | None -> Error "unknown grant reference"
  | Some e ->
      if e.map_count > 0 then Error "mappings outstanding"
      else begin
        e.revoked <- true;
        Ok ()
      end

let mappings t r = match lookup t r with Some e -> e.map_count | None -> 0
