(** Memory ballooning (Section 4.5 "Memory management").

    The prototype gives every X-Container a static reservation; the paper
    points to ballooning as the known fix.  This model implements it: a
    balloon driver in each guest inflates (returns pages to the
    hypervisor) or deflates (reclaims them) towards a target set by the
    host, letting the host oversubscribe memory the way Linux containers
    do. *)

type t

val create : domain:Domain.t -> t
(** A balloon for a domain; starts fully deflated (guest owns its whole
    reservation). *)

val domain_reservation_mb : t -> int
val guest_usable_mb : t -> int
(** Memory currently usable by the guest (reservation - balloon size). *)

val ballooned_mb : t -> int

val set_target : t -> usable_mb:int -> (int, string) result
(** Ask the guest to move to [usable_mb]: inflates or deflates as needed.
    Returns the number of MB transferred to/from the hypervisor.  Fails
    below the 64 MB floor the paper measured X-Containers to work at, or
    above the reservation. *)

val min_usable_mb : int
(** 64 MB (footnote 1 of Section 5.6). *)

val inflate_cost_ns : mb:int -> float
(** Cost of returning [mb] to the hypervisor (page scrubbing + grants). *)

(** {2 Host-side oversubscription} *)

type pool

val pool : host_mb:int -> pool
val attach : pool -> t -> unit

val reclaim : pool -> need_mb:int -> int
(** Inflate balloons (largest first) until [need_mb] has been freed or
    every guest is at the floor; returns the amount actually freed. *)

val pool_free_mb : pool -> int
val pool_committed_mb : pool -> int
(** Sum of reservations: may exceed [host_mb] once ballooning works. *)
