(** XenStore: the hierarchical configuration store of the Xen toolstack.

    Domain configuration, device handshakes and the split-driver
    front/back negotiation all go through this key-value tree with
    watches.  The xl toolstack's slowness the paper measures (Section
    4.5) is largely serialised XenStore traffic; the model counts
    operations so the boot-path analysis can attribute time to it. *)

type t

val create : unit -> t

val write : t -> path:string -> string -> unit
(** Create intermediate directories implicitly (as XenStore does);
    fires watches on the path and every ancestor. *)

val read : t -> path:string -> string option
val directory : t -> path:string -> string list
(** Immediate children names (sorted); empty for missing paths. *)

val rm : t -> path:string -> unit
(** Remove a subtree; fires watches. *)

val watch : t -> path:string -> (string -> unit) -> unit
(** Register a callback fired with the changed path for every write/rm
    at or under [path]. *)

val op_count : t -> int
(** Total reads+writes+rms (the serialised traffic the toolstack pays). *)

(** {2 The domain-device handshake} *)

val device_handshake : t -> domid:int -> device:string -> int
(** Run the canonical front/back negotiation for one device (states
    Initialising -> InitWait -> Initialised -> Connected, both sides):
    writes the state keys in order and returns the number of XenStore
    operations it took — the per-device toolstack cost. *)
