type entry = { domain_id : int; key : int }

type t = {
  capacity : int;
  (* LRU as a queue of entries + membership table. *)
  mutable order : entry list; (* most recent first *)
  table : (entry, unit) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity_pages =
  if capacity_pages <= 0 then invalid_arg "Tmem.create: capacity";
  {
    capacity = capacity_pages;
    order = [];
    table = Hashtbl.create 256;
    hits = 0;
    misses = 0;
  }

let capacity_pages t = t.capacity
let stored_pages t = Hashtbl.length t.table

let evict_oldest t =
  match List.rev t.order with
  | [] -> ()
  | oldest :: _ ->
      Hashtbl.remove t.table oldest;
      t.order <- List.filter (fun e -> e <> oldest) t.order

let put t ~domain_id ~key =
  let e = { domain_id; key } in
  if Hashtbl.mem t.table e then
    t.order <- e :: List.filter (fun x -> x <> e) t.order
  else begin
    if stored_pages t >= t.capacity then evict_oldest t;
    Hashtbl.add t.table e ();
    t.order <- e :: t.order
  end

let get t ~domain_id ~key =
  let e = { domain_id; key } in
  if Hashtbl.mem t.table e then begin
    Hashtbl.remove t.table e;
    t.order <- List.filter (fun x -> x <> e) t.order;
    t.hits <- t.hits + 1;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    `Miss
  end

let flush_domain t ~domain_id =
  let mine, rest = List.partition (fun e -> e.domain_id = domain_id) t.order in
  List.iter (Hashtbl.remove t.table) mine;
  t.order <- rest;
  List.length mine

let hits t = t.hits
let misses t = t.misses

(* An SSD page read is ~80us; a tmem get is a hypercall + copy. *)
let hit_saving_ns = 80_000. -. (Xc_cpu.Costs.hypercall_ns +. 1_000.)
