type node = { mutable value : string option; children : (string, node) Hashtbl.t }

type t = {
  root : node;
  mutable watches : (string * (string -> unit)) list;
  mutable ops : int;
}

let make_node () = { value = None; children = Hashtbl.create 4 }
let create () = { root = make_node (); watches = []; ops = 0 }

let split path = String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let rec find_node node = function
  | [] -> Some node
  | c :: rest -> begin
      match Hashtbl.find_opt node.children c with
      | Some child -> find_node child rest
      | None -> None
    end

let fire_watches t path =
  List.iter
    (fun (prefix, f) ->
      let matches =
        path = prefix
        || String.length path > String.length prefix
           && String.sub path 0 (String.length prefix) = prefix
           && (prefix = "" || path.[String.length prefix] = '/')
      in
      if matches then f path)
    t.watches

let write t ~path value =
  t.ops <- t.ops + 1;
  let rec go node = function
    | [] -> node.value <- Some value
    | c :: rest ->
        let child =
          match Hashtbl.find_opt node.children c with
          | Some n -> n
          | None ->
              let n = make_node () in
              Hashtbl.add node.children c n;
              n
        in
        go child rest
  in
  go t.root (split path);
  fire_watches t path

let read t ~path =
  t.ops <- t.ops + 1;
  match find_node t.root (split path) with
  | Some node -> node.value
  | None -> None

let directory t ~path =
  t.ops <- t.ops + 1;
  match find_node t.root (split path) with
  | Some node ->
      Hashtbl.fold (fun k _ acc -> k :: acc) node.children [] |> List.sort compare
  | None -> []

let rm t ~path =
  t.ops <- t.ops + 1;
  (match List.rev (split path) with
  | [] -> ()
  | leaf :: rev_parents -> begin
      match find_node t.root (List.rev rev_parents) with
      | Some parent -> Hashtbl.remove parent.children leaf
      | None -> ()
    end);
  fire_watches t path

let watch t ~path f = t.watches <- (path, f) :: t.watches
let op_count t = t.ops

(* XenBus states, as integers in the store. *)
let device_handshake t ~domid ~device =
  let before = t.ops in
  let front = Printf.sprintf "/local/domain/%d/device/%s/0" domid device in
  let back = Printf.sprintf "/local/domain/0/backend/%s/%d/0" device domid in
  let sync_step state =
    write t ~path:(front ^ "/state") (string_of_int state);
    ignore (read t ~path:(back ^ "/state"));
    write t ~path:(back ^ "/state") (string_of_int state);
    ignore (read t ~path:(front ^ "/state"))
  in
  (* Initialising(1) -> InitWait(2) -> Initialised(3) -> Connected(4),
     plus the ring-ref and event-channel exchange. *)
  sync_step 1;
  write t ~path:(front ^ "/ring-ref") "42";
  write t ~path:(front ^ "/event-channel") "7";
  sync_step 2;
  sync_step 3;
  sync_step 4;
  t.ops - before
