type state = Runnable | Running | Blocked

type t = {
  id : int;
  domain_id : int;
  mutable state : state;
  mutable credit : int;
  mutable runtime_ns : float;
}

let create ~id ~domain_id =
  { id; domain_id; state = Runnable; credit = 0; runtime_ns = 0. }

let id t = t.id
let domain_id t = t.domain_id
let state t = t.state
let set_state t s = t.state <- s
let credit t = t.credit
let set_credit t c = t.credit <- c
let consume_credit t c = t.credit <- t.credit - c
let runtime_ns t = t.runtime_ns
let add_runtime t ns = t.runtime_ns <- t.runtime_ns +. ns
