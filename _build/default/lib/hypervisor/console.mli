(** The PV console: a shared-ring character channel to Domain-0.

    Every guest gets one; boot messages and the paper's debugging story
    flow through it.  The ring is a fixed power-of-two buffer with
    producer/consumer indices, exactly like Xen's [xencons_interface]:
    writes beyond the reader's progress are dropped (the guest does not
    block on a slow console). *)

type t

val create : ?ring_size:int -> domid:int -> unit -> t
(** [ring_size] must be a power of two (default 2048). *)

val domid : t -> int

val write : t -> string -> int
(** Produce characters; returns how many fit (the rest are dropped). *)

val read_all : t -> string
(** Consume everything buffered (Domain-0's consol-daemon side). *)

val dropped : t -> int
(** Characters lost to a full ring so far. *)

val buffered : t -> int
