(** Live migration (Section 3.3).

    One of the paper's arguments for the Xen substrate: X-Containers
    inherit live migration "for free", which plain containers lack.  We
    model classic pre-copy: iteratively transfer dirty pages while the
    guest runs, then stop-and-copy the residual working set.

    Rounds converge when the dirty rate is below the transfer rate;
    otherwise the algorithm caps the rounds and eats a larger downtime —
    the classic trade-off the tests pin down. *)

type params = {
  memory_mb : int;
  dirty_pages_per_s : float;  (** how fast the workload redirties pages *)
  link_gbps : float;
  max_rounds : int;  (** pre-copy rounds before forcing stop-and-copy *)
  stop_threshold_pages : int;  (** stop-and-copy when residual below this *)
}

val default_params : memory_mb:int -> params
(** 1 Gb/s migration link, 30 rounds, 2k-page threshold. *)

type round = { index : int; pages_sent : int; duration_ns : float }

type result = {
  rounds : round list;
  total_pages_sent : int;
  downtime_ns : float;  (** the stop-and-copy blackout *)
  total_ns : float;
  converged : bool;  (** reached the threshold before [max_rounds] *)
}

val migrate : params -> result

val page_size_bytes : int

val downtime_budget_met : result -> budget_ns:float -> bool
