lib/hypervisor/tmem.mli:
