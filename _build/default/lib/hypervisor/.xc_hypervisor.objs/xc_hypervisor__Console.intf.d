lib/hypervisor/console.mli:
