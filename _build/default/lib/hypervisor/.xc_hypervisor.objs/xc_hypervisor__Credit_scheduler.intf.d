lib/hypervisor/credit_scheduler.mli: Vcpu
