lib/hypervisor/hypercall.mli:
