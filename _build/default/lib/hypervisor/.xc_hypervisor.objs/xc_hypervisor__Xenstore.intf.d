lib/hypervisor/xenstore.mli:
