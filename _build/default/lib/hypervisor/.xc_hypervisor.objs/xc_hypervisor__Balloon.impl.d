lib/hypervisor/balloon.ml: Domain List Printf Stdlib Xc_cpu
