lib/hypervisor/vcpu.ml:
