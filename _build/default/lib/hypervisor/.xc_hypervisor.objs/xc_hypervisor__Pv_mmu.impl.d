lib/hypervisor/pv_mmu.ml: Hypercall List Xc_mem
