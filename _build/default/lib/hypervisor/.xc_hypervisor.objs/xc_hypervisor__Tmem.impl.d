lib/hypervisor/tmem.ml: Hashtbl List Xc_cpu
