lib/hypervisor/event_channel.mli:
