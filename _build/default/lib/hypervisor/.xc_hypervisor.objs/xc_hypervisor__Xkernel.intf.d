lib/hypervisor/xkernel.mli: Credit_scheduler Domain Event_channel Hypercall
