lib/hypervisor/migration.mli:
