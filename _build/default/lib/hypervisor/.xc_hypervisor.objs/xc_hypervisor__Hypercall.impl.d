lib/hypervisor/hypercall.ml: Hashtbl List Xc_cpu
