lib/hypervisor/xenstore.ml: Hashtbl List Printf String
