lib/hypervisor/balloon.mli: Domain
