lib/hypervisor/split_driver.mli: Event_channel Grant_table Hypercall
