lib/hypervisor/event_channel.ml: Hashtbl List Xc_cpu
