lib/hypervisor/migration.ml: List Stdlib
