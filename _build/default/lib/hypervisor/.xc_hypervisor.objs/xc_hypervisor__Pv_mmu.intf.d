lib/hypervisor/pv_mmu.mli: Hypercall Xc_mem
