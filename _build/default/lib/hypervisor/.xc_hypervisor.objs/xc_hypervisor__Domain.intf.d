lib/hypervisor/domain.mli: Vcpu
