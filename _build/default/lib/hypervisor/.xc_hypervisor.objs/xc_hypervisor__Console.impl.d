lib/hypervisor/console.ml: Bytes String
