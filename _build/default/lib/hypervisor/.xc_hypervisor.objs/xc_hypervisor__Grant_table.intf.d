lib/hypervisor/grant_table.mli:
