lib/hypervisor/credit_scheduler.ml: Float List Stdlib Vcpu Xc_cpu
