lib/hypervisor/domain.ml: Array Vcpu
