lib/hypervisor/split_driver.ml: Event_channel Grant_table Hypercall List Stdlib Xc_cpu
