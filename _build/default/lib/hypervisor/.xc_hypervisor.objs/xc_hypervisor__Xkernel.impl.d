lib/hypervisor/xkernel.ml: Array Credit_scheduler Domain Event_channel Hypercall List Printf Xc_cpu
