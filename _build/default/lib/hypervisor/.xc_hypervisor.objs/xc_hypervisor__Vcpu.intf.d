lib/hypervisor/vcpu.mli:
