lib/hypervisor/grant_table.ml: Hashtbl
