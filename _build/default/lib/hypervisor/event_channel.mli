(** Xen event channels (paravirtualized interrupts).

    In stock Xen PV, pending events are delivered by trapping into the
    hypervisor; in an X-Container, X-LibOS notices the shared pending flag
    and emulates the interrupt stack frame entirely in user mode
    (Section 4.2).  The delivery-cost difference is one of the
    modifications that separates Xen-Containers from X-Containers in the
    macrobenchmarks. *)

type delivery = Via_hypervisor | Direct_user_mode

type t

val create : delivery -> t
val delivery : t -> delivery

val bind : t -> port:int -> unit
val is_bound : t -> port:int -> bool

val notify : t -> port:int -> float
(** Raise an event on a bound port; returns the sender-side cost. *)

val pending : t -> int list
(** Bound ports with undelivered events, ascending. *)

val deliver_pending : t -> (int -> unit) -> float
(** Run the handler for every pending event (clearing them); returns the
    total receiver-side delivery cost, which depends on the mode. *)

val delivered_count : t -> int
