let min_usable_mb = 64

type t = {
  domain : Domain.t;
  mutable ballooned_mb : int;
}

let create ~domain = { domain; ballooned_mb = 0 }
let domain_reservation_mb t = Domain.memory_mb t.domain
let guest_usable_mb t = Domain.memory_mb t.domain - t.ballooned_mb
let ballooned_mb t = t.ballooned_mb

let set_target t ~usable_mb =
  if usable_mb < min_usable_mb then
    Error
      (Printf.sprintf "target %dMB below the %dMB floor" usable_mb min_usable_mb)
  else if usable_mb > domain_reservation_mb t then
    Error
      (Printf.sprintf "target %dMB above the %dMB reservation" usable_mb
         (domain_reservation_mb t))
  else begin
    let before = guest_usable_mb t in
    t.ballooned_mb <- domain_reservation_mb t - usable_mb;
    Ok (before - usable_mb)
  end

(* Scrub + grant-return per 4KB page, batched. *)
let inflate_cost_ns ~mb =
  let pages = float_of_int (mb * 256) in
  pages *. (180. +. Xc_cpu.Costs.pv_validation_per_entry_ns)

type pool = {
  host_mb : int;
  mutable balloons : t list;
  mutable freed_mb : int;
}

let pool ~host_mb = { host_mb; balloons = []; freed_mb = 0 }
let attach p b = p.balloons <- b :: p.balloons

let reclaim p ~need_mb =
  let freed = ref 0 in
  let by_usable =
    List.sort (fun a b -> compare (guest_usable_mb b) (guest_usable_mb a)) p.balloons
  in
  List.iter
    (fun b ->
      if !freed < need_mb then begin
        let usable = guest_usable_mb b in
        let give = Stdlib.min (usable - min_usable_mb) (need_mb - !freed) in
        if give > 0 then begin
          match set_target b ~usable_mb:(usable - give) with
          | Ok got -> freed := !freed + got
          | Error _ -> ()
        end
      end)
    by_usable;
  p.freed_mb <- p.freed_mb + !freed;
  !freed

let pool_committed_mb p =
  List.fold_left (fun acc b -> acc + domain_reservation_mb b) 0 p.balloons

let pool_free_mb p =
  let in_use = List.fold_left (fun acc b -> acc + guest_usable_mb b) 0 p.balloons in
  p.host_mb - in_use
