(** The exokernel: stock Xen or the modified X-Kernel.

    The two differ by the ABI changes of Section 4.2/4.3, captured in the
    {!abi} record:

    - [kernel_user_isolated]: stock x86-64 PV keeps the guest kernel in
      its own address space and forwards each syscall with a page-table
      switch and TLB flush; the X-Kernel maps X-LibOS into the process;
    - [global_bit_allowed]: X-LibOS pages may set the global bit;
    - [direct_event_delivery]: events delivered by emulating the
      interrupt frame in user mode instead of an upcall through Xen;
    - [user_mode_iret]: iret/sysret implemented without hypercalls;
    - [abom_enabled]: the online binary patcher runs on syscall traps. *)

type abi = {
  kernel_user_isolated : bool;
  global_bit_allowed : bool;
  direct_event_delivery : bool;
  user_mode_iret : bool;
  abom_enabled : bool;
}

val stock_xen_abi : abi
val xkernel_abi : abi

type t

val create : ?abi:abi -> pcpus:int -> memory_mb:int -> unit -> t
(** A host with a Dom0 (1 GB, created implicitly). *)

val abi : t -> abi
val pcpus : t -> int
val total_memory_mb : t -> int
val free_memory_mb : t -> int
val hypercalls : t -> Hypercall.t
val scheduler : t -> Credit_scheduler.t
val domains : t -> Domain.t list
val dom0 : t -> Domain.t

val create_domain :
  t -> vcpus:int -> memory_mb:int -> (Domain.t, string) result
(** Fails when memory is exhausted — this is the gate that stops Xen PV
    at ~250 and Xen HVM at ~200 instances in Figure 8. *)

val destroy_domain : t -> Domain.t -> unit

val syscall_forward_cost_ns : t -> float
(** Cost of one forwarded (unpatched) syscall under this ABI. *)

val event_delivery : t -> Event_channel.delivery
val iret_cost_ns : t -> float

val tcb_kloc : t -> int
(** Modelled trusted-computing-base size in kLoC: Xen ~270 kLoC vs a
    monolithic Linux host at ~17,000 kLoC — the Section 3.4 argument. *)

val linux_host_tcb_kloc : int
val linux_host_syscall_surface : int
