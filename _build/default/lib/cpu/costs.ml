(* All constants in nanoseconds.  See the .mli for calibration sources. *)

let cycle_ns = 0.345
let cache_line_refill_ns = 30.
let tlb_walk_ns = 35.

(* Syscall paths. *)
let function_call_ns = 2.
let xc_fast_syscall_ns = 12.
let xc_forwarded_syscall_ns = 250.
let syscall_trap_ns = 100.
let cheap_syscall_work_ns = 6.
let seccomp_audit_ns = 55.
let kpti_transition_ns = 130.
let kpti_tlb_side_ns = 60.
let clear_guest_syscall_ns = 22.
let gvisor_syscall_ns = 6200.
let xen_pv_syscall_ns = 1050.
let xen_xpti_extra_ns = 450.

(* Interrupts and events. *)
let interrupt_delivery_ns = 600.
let xen_event_channel_ns = 900.
let xc_event_direct_ns = 120.
let iret_hypercall_ns = 300.
let xc_iret_ns = 25.

(* Hypervisor. *)
let hypercall_ns = 180.
let nested_vmexit_ns = 4200.
let vmexit_ns = 900.
let pv_mmu_update_ns = 320.
let pv_validation_per_entry_ns = 45.
let pv_mmu_batch_entries = 512

(* Scheduling and processes. *)
let context_switch_base_ns = 1100.
let pv_context_switch_extra_ns = 2600.
let cr3_switch_ns = 130.
let tlb_refill_user_ns = 450.
let tlb_refill_kernel_ns = 400.
let runqueue_ns_per_task = 4.
let llc_pressure_threshold_tasks = 1000
let llc_pressure_full_tasks = 3000
let llc_refill_penalty_ns = 90_000.
let fork_base_ns = 45_000.
let fork_per_page_ns = 55.
let exec_base_ns = 180_000.
let process_pages = 640

(* Network. *)
let netdev_xmit_ns = 1900.
let bridge_hop_ns = 1500.
let split_driver_hop_ns = 2100.
let gvisor_net_ns = 9000.
let nested_io_ns = 5200.
let wire_ns_per_byte = 0.8
let lan_rtt_ns = 28_000.

let validate () =
  let errors = ref [] in
  let check name cond = if not cond then errors := name :: !errors in
  let docker_patched =
    syscall_trap_ns +. seccomp_audit_ns
    +. (2. *. kpti_transition_ns)
    +. kpti_tlb_side_ns
  in
  let cheap = cheap_syscall_work_ns in
  (* Headline 27x: patched Docker vs X-Container, end-to-end cheap syscall. *)
  check "xc 20-30x faster than patched docker"
    (let r = (docker_patched +. cheap) /. (xc_fast_syscall_ns +. cheap) in
     r > 20. && r < 32.);
  (* gVisor at 7-9% of Docker throughput. *)
  check "gvisor at 5-10% of docker"
    (let r = docker_patched /. gvisor_syscall_ns in
     r > 0.05 && r < 0.10);
  (* Clear within ~1.6x of XC. *)
  check "xc 1.4-1.8x faster than clear"
    (let r = (clear_guest_syscall_ns +. cheap) /. (xc_fast_syscall_ns +. cheap) in
     r > 1.3 && r < 1.9);
  check "fast syscall beats every trap path"
    (xc_fast_syscall_ns < clear_guest_syscall_ns
    && clear_guest_syscall_ns < syscall_trap_ns
    && syscall_trap_ns < docker_patched
    && docker_patched < xen_pv_syscall_ns
    && xen_pv_syscall_ns < gvisor_syscall_ns);
  check "forwarded xc syscall cheaper than xen pv forward"
    (xc_forwarded_syscall_ns < xen_pv_syscall_ns);
  check "xc event delivery beats xen event channel"
    (xc_event_direct_ns < xen_event_channel_ns);
  check "xc iret beats iret hypercall" (xc_iret_ns < iret_hypercall_ns);
  check "nested vmexit dominates first-level" (nested_vmexit_ns > vmexit_ns);
  check "global-bit saves kernel TLB refill" (tlb_refill_kernel_ns > 0.);
  if !errors = [] then Ok () else Error (List.rev !errors)
