type t = { cores : Core.t array }

let create ~cores =
  if cores <= 0 then invalid_arg "Smp.create: need at least one core";
  { cores = Array.init cores (fun id -> Core.create ~id) }

let cores t = Array.length t.cores
let core t i = t.cores.(i)

let total_busy_ns t =
  Array.fold_left (fun acc c -> acc +. Core.busy_ns c) 0. t.cores

let reset t = Array.iter Core.reset t.cores

let least_busy t =
  Array.fold_left
    (fun best c -> if Core.busy_ns c < Core.busy_ns best then c else best)
    t.cores.(0) t.cores
