(** One physical CPU core: time and event accounting.

    A core accumulates busy nanoseconds and labelled event counts; the
    benchmark harness divides work done by busy time to obtain
    throughputs, and reads the counters to explain them. *)

type t

val create : id:int -> t
val id : t -> int

val charge : t -> ?label:string -> float -> unit
(** Consume [ns] of core time; optionally count the event under [label]. *)

val busy_ns : t -> float
val count : t -> string -> float
val metrics : t -> Xc_sim.Metrics.t
val reset : t -> unit

val utilization : t -> wall_ns:float -> float
(** Busy fraction over a wall-clock window. *)
