type t = Hypervisor | Guest_kernel | Guest_user

let to_string = function
  | Hypervisor -> "hypervisor"
  | Guest_kernel -> "guest-kernel"
  | Guest_user -> "guest-user"

let equal (a : t) (b : t) = a = b

let of_stack_pointer sp =
  if Int64.compare sp 0L < 0 then Guest_kernel else Guest_user
