(** A symmetric multiprocessor: a fixed set of cores.

    The paper's cloud instances expose 4 cores / 8 hardware threads; the
    local cluster machines 16 cores / 32 threads.  Experiments hand out
    cores to platforms (e.g. "dedicate one core to the NGINX worker"). *)

type t

val create : cores:int -> t
val cores : t -> int
val core : t -> int -> Core.t
val total_busy_ns : t -> float
val reset : t -> unit

val least_busy : t -> Core.t
(** The core with the least accumulated busy time (simple load balance). *)
