lib/cpu/costs.mli:
