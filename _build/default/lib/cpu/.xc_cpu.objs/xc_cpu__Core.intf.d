lib/cpu/core.mli: Xc_sim
