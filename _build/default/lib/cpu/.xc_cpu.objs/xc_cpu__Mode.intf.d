lib/cpu/mode.mli:
