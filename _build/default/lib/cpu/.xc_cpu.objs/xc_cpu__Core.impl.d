lib/cpu/core.ml: Xc_sim
