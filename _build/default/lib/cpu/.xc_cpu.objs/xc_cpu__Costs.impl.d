lib/cpu/costs.ml: List
