lib/cpu/mode.ml: Int64
