lib/cpu/smp.mli: Core
