lib/cpu/smp.ml: Array Core
