(** The calibrated cost model.

    Every architectural event the simulation accounts for has one named
    nanosecond constant here.  The constants are calibrated against
    published measurements of 2017-2018 era Xeons (the paper's testbeds:
    EC2 c4.2xlarge and a GCE custom instance, both Haswell/Skylake class)
    and against the paper's own qualitative statements.  The reproduced
    figures' {i shapes} — who wins, by what factor, where crossovers sit —
    follow from the relationships between these constants; the test suite
    pins the relationships (see {!validate}), not the absolute values.

    Key anchor points:
    - a patched (KPTI) Docker syscall costs ~27x an X-Container's
      function-call syscall (the paper's headline 27x, Figure 4);
    - gVisor's ptrace interception costs ~10-13x a plain syscall, putting
      its syscall throughput at 7-9% of Docker's (Section 5.4);
    - Clear Containers' stripped-down guest kernel handles syscalls
      faster than stock Linux but ~1.6x slower than X-Containers;
    - Xen PV on x86-64 forwards every syscall through the hypervisor with
      an address-space switch and TLB flush each way (Section 4.1). *)

(** {2 Base machine} *)

val cycle_ns : float
(** One cycle at 2.9 GHz. *)

val cache_line_refill_ns : float
val tlb_walk_ns : float
(** One page-table walk after a TLB miss. *)

(** {2 Mode switches and system calls} *)

val function_call_ns : float
(** Plain call/ret pair. *)

val xc_fast_syscall_ns : float
(** X-Container syscall after ABOM patching: call through the vsyscall
    entry table, switch to the kernel stack, dispatch.  No mode switch. *)

val xc_forwarded_syscall_ns : float
(** X-Container syscall {i before} patching (or unpatchable site): traps
    to the X-Kernel, which immediately bounces to X-LibOS — no address
    space switch, unlike stock Xen PV. *)

val syscall_trap_ns : float
(** Native syscall/sysret round trip plus kernel entry path, stock
    Linux, no Meltdown patch. *)

val cheap_syscall_work_ns : float
(** In-kernel work of a trivial syscall (getpid class). *)

val seccomp_audit_ns : float
(** Docker's per-syscall seccomp/audit/cgroup filtering on the host. *)

val kpti_transition_ns : float
(** One CR3 write of the Meltdown patch; a syscall performs two. *)

val kpti_tlb_side_ns : float
(** Amortised TLB refill cost caused by each patched syscall. *)

val clear_guest_syscall_ns : float
(** Syscall inside a Clear Container: the guest kernel is minimal,
    security features disabled, never patched. *)

val gvisor_syscall_ns : float
(** gVisor (ptrace platform): each syscall is intercepted by the Sentry
    via ptrace — multiple host context switches. *)

val xen_pv_syscall_ns : float
(** Stock Xen PV on x86-64: trap to Xen, virtual exception into the guest
    kernel in a different address space: page-table switch and TLB flush
    each way (Section 4.1). *)

val xen_xpti_extra_ns : float
(** Extra cost when the Xen Meltdown patch (XPTI) is applied. *)

(** {2 Interrupts and events} *)

val interrupt_delivery_ns : float
(** Hardware interrupt delivery through the kernel. *)

val xen_event_channel_ns : float
(** Xen PV event delivery via hypercall. *)

val xc_event_direct_ns : float
(** X-Container event delivery: X-LibOS emulates the interrupt stack
    frame in user mode, no trap (Section 4.2). *)

val iret_hypercall_ns : float
(** Xen PV iret hypercall. *)

val xc_iret_ns : float
(** X-Container iret: implemented entirely in user mode. *)

(** {2 Hypervisor} *)

val hypercall_ns : float
val nested_vmexit_ns : float
(** VM exit under nested hardware virtualization (Clear on GCE). *)

val vmexit_ns : float
(** First-level VM exit. *)

val pv_mmu_update_ns : float
(** One validated PV MMU update batch (page-table write via X-Kernel). *)

val pv_validation_per_entry_ns : float
(** Hypervisor validation of one page-table entry in a batch. *)

val pv_mmu_batch_entries : int
(** Entries per mmu_update hypercall batch. *)

(** {2 Scheduling and processes} *)

val context_switch_base_ns : float
(** Fixed cost: register state, scheduler bookkeeping. *)

val pv_context_switch_extra_ns : float
(** Extra cost of a process switch inside any Xen PV-family guest: the
    page-table base switch, validation and vCPU accounting are hypercalls
    (the Section 5.4 "noticeable overhead" of X-Containers in context
    switching and process creation). *)

val cr3_switch_ns : float
val tlb_refill_user_ns : float
(** Refill of the user working set after a CR3 switch. *)

val tlb_refill_kernel_ns : float
(** Extra refill when kernel mappings are {i not} global (stock Xen PV
    guests; avoided by X-LibOS's global-bit mappings, Section 4.3). *)

val runqueue_ns_per_task : float
(** Per-switch scheduler bookkeeping and cache pollution proportional to
    the number of runnable tasks at that scheduling level: picking among
    1600 hot processes costs real microseconds in cache refills.  This
    slope is what makes the flat Docker runqueue (4N tasks) lose to the
    two-level X-Kernel hierarchy (N vCPUs of 4 tasks) in Figure 8. *)

val llc_pressure_threshold_tasks : int
(** Runnable-task count at one scheduling level beyond which the combined
    working set overwhelms the last-level cache and every switch starts
    paying a partial refill. *)

val llc_pressure_full_tasks : int
(** Task count at which the refill penalty saturates. *)

val llc_refill_penalty_ns : float
(** The saturated per-switch refill penalty.  Only flat schedulers ever
    reach it: the X-Kernel hierarchy keeps both levels small. *)

val fork_base_ns : float
val fork_per_page_ns : float
val exec_base_ns : float
val process_pages : int
(** Typical resident pages of a small benchmark process. *)

(** {2 Network} *)

val netdev_xmit_ns : float
(** Native per-packet transmit/receive path in the kernel. *)

val bridge_hop_ns : float
(** iptables port-forwarding hop (the clouds' NAT setup, Section 5.3). *)

val split_driver_hop_ns : float
(** Xen split-driver hop: shared ring + event channel to the driver
    domain. *)

val gvisor_net_ns : float
(** gVisor netstack per-packet overhead (user-space TCP/IP). *)

val nested_io_ns : float
(** Per-packet cost added by nested virtualization (Clear). *)

val wire_ns_per_byte : float
(** 10 GbE serialisation cost per byte. *)

val lan_rtt_ns : float
(** Client-server round trip on the local network. *)

(** {2 Sanity} *)

val validate : unit -> (unit, string list) result
(** Check every ordering relationship the reproduced shapes depend on;
    [Error] lists violated relations.  Run by the test suite. *)
