(* Tests for the stateful OS plumbing added beyond the cost models:
   sockets, fd tables and grant tables — plus an end-to-end request
   served through real socket objects. *)

open Xc_os

(* ---------------- Sockets ---------------- *)

let listener ~port ~backlog =
  let s = Socket.create () in
  (match Socket.bind s ~port with Ok () -> () | Error e -> Alcotest.fail e);
  (match Socket.listen s ~backlog with Ok () -> () | Error e -> Alcotest.fail e);
  s

let test_socket_lifecycle () =
  let srv = listener ~port:80 ~backlog:4 in
  let client = Socket.create () in
  (match Socket.connect client ~to_port:80 ~namespace:[ srv ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let server_side =
    match Socket.accept srv with Ok s -> s | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "client established" true (Socket.state client = Socket.Established);
  Alcotest.(check bool) "server side established" true
    (Socket.state server_side = Socket.Established);
  (* Request/response through the buffers. *)
  (match Socket.send client (Bytes.of_string "GET / HTTP/1.1") with
  | Ok 14 -> ()
  | Ok n -> Alcotest.failf "partial send %d" n
  | Error e -> Alcotest.fail e);
  (match Socket.recv server_side ~max_len:1024 with
  | Ok b -> Alcotest.(check string) "request arrives" "GET / HTTP/1.1" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  (match Socket.send server_side (Bytes.of_string "200 OK") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Socket.recv client ~max_len:1024 with
  | Ok b -> Alcotest.(check string) "response arrives" "200 OK" (Bytes.to_string b)
  | Error e -> Alcotest.fail e)

let test_socket_refusal_and_backlog () =
  let client = Socket.create () in
  (match Socket.connect client ~to_port:81 ~namespace:[] with
  | Error "connection refused" -> ()
  | _ -> Alcotest.fail "expected refusal");
  let srv = listener ~port:81 ~backlog:1 in
  let c1 = Socket.create () and c2 = Socket.create () in
  (match Socket.connect c1 ~to_port:81 ~namespace:[ srv ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Socket.connect c2 ~to_port:81 ~namespace:[ srv ] with
  | Error "backlog full" -> ()
  | _ -> Alcotest.fail "expected backlog full"

let test_socket_eof_and_broken_pipe () =
  let srv = listener ~port:82 ~backlog:2 in
  let client = Socket.create () in
  ignore (Socket.connect client ~to_port:82 ~namespace:[ srv ]);
  let server_side = match Socket.accept srv with Ok s -> s | Error e -> Alcotest.fail e in
  ignore (Socket.send client (Bytes.of_string "bye"));
  Socket.close client;
  (* The peer can still drain buffered data, then sees EOF. *)
  (match Socket.recv server_side ~max_len:10 with
  | Ok b -> Alcotest.(check string) "drain before EOF" "bye" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  (match Socket.recv server_side ~max_len:10 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected EOF");
  match Socket.send server_side (Bytes.of_string "x") with
  | Error "broken pipe" -> ()
  | _ -> Alcotest.fail "expected broken pipe"

let test_socket_flow_control () =
  let srv = listener ~port:83 ~backlog:2 in
  let client = Socket.create () in
  ignore (Socket.connect client ~to_port:83 ~namespace:[ srv ]);
  let _server_side = match Socket.accept srv with Ok s -> s | Error e -> Alcotest.fail e in
  let big = Bytes.make (Socket.buffer_capacity + 100) 'x' in
  (match Socket.send client big with
  | Ok n -> Alcotest.(check int) "bounded by buffer" Socket.buffer_capacity n
  | Error e -> Alcotest.fail e);
  match Socket.send client (Bytes.of_string "y") with
  | Ok 0 -> () (* would block *)
  | Ok n -> Alcotest.failf "expected 0, got %d" n
  | Error e -> Alcotest.fail e

let test_socket_accept_order () =
  let srv = listener ~port:84 ~backlog:8 in
  let mk tag =
    let c = Socket.create () in
    ignore (Socket.connect c ~to_port:84 ~namespace:[ srv ]);
    ignore (Socket.send c (Bytes.of_string tag));
    c
  in
  let _a = mk "first" and _b = mk "second" in
  let s1 = match Socket.accept srv with Ok s -> s | Error e -> Alcotest.fail e in
  (match Socket.recv s1 ~max_len:16 with
  | Ok b -> Alcotest.(check string) "FIFO accept" "first" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  match Socket.accept srv with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ---------------- Fd table ---------------- *)

let test_fd_table_basics () =
  let t = Fd_table.create () in
  Alcotest.(check int) "std streams" 3 (Fd_table.open_count t);
  let p = Pipe.create () in
  let fd = Fd_table.allocate t (Fd_table.Pipe_read p) in
  Alcotest.(check int) "lowest free is 3" 3 fd;
  (match Fd_table.dup t fd with
  | Ok d -> Alcotest.(check int) "dup gets 4" 4 d
  | Error e -> Alcotest.fail e);
  (match Fd_table.close t fd with Ok () -> () | Error e -> Alcotest.fail e);
  (* The dup'd descriptor still works; slot 3 is free again. *)
  (match Fd_table.get t 4 with
  | Some (Fd_table.Pipe_read _) -> ()
  | _ -> Alcotest.fail "dup target lost");
  let fd2 = Fd_table.allocate t (Fd_table.Pipe_write p) in
  Alcotest.(check int) "slot reused" 3 fd2

let test_fd_table_errors () =
  let t = Fd_table.create () in
  (match Fd_table.dup t 99 with Error _ -> () | Ok _ -> Alcotest.fail "dup bad fd");
  (match Fd_table.close t 99 with Error _ -> () | Ok _ -> Alcotest.fail "close bad fd");
  (match Fd_table.dup2 t 0 (-1) with Error _ -> () | Ok _ -> Alcotest.fail "dup2 bad");
  match Fd_table.dup2 t 0 7 with
  | Ok () -> begin
      match Fd_table.get t 7 with
      | Some (Fd_table.Std "stdin") -> ()
      | _ -> Alcotest.fail "dup2 target wrong"
    end
  | Error e -> Alcotest.fail e

let test_fd_table_clone () =
  let t = Fd_table.create () in
  let p = Pipe.create () in
  let fd = Fd_table.allocate t (Fd_table.Pipe_write p) in
  let child = Fd_table.clone t in
  (* Closing in the child does not affect the parent (separate tables),
     but both named the same pipe. *)
  (match Fd_table.close child fd with Ok () -> () | Error e -> Alcotest.fail e);
  (match Fd_table.get t fd with
  | Some (Fd_table.Pipe_write p') -> Alcotest.(check bool) "same pipe" true (p' == p)
  | _ -> Alcotest.fail "parent lost fd")

(* The UnixBench dup/close inner loop, on the real table. *)
let test_fd_table_unixbench_loop () =
  let t = Fd_table.create () in
  for _ = 1 to 1000 do
    match Fd_table.dup t 1 with
    | Ok fd -> begin
        match Fd_table.close t fd with
        | Ok () -> ()
        | Error e -> Alcotest.fail e
      end
    | Error e -> Alcotest.fail e
  done;
  Alcotest.(check int) "no leak" 3 (Fd_table.open_count t)

(* ---------------- Grant table ---------------- *)

let test_grant_lifecycle () =
  let gt = Xc_hypervisor.Grant_table.create ~owner:1 ~capacity:8 in
  let r =
    match Xc_hypervisor.Grant_table.grant gt ~to_domain:0 ~frame:555 Xc_hypervisor.Grant_table.Read_only with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (match Xc_hypervisor.Grant_table.map gt r ~by_domain:0 with
  | Ok (frame, Xc_hypervisor.Grant_table.Read_only) ->
      Alcotest.(check int) "frame" 555 frame
  | Ok _ -> Alcotest.fail "wrong permission"
  | Error e -> Alcotest.fail e);
  (* Revocation must wait for the unmap. *)
  (match Xc_hypervisor.Grant_table.revoke gt r with
  | Error "mappings outstanding" -> ()
  | _ -> Alcotest.fail "revoke must fail while mapped");
  (match Xc_hypervisor.Grant_table.unmap gt r ~by_domain:0 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Xc_hypervisor.Grant_table.revoke gt r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Xc_hypervisor.Grant_table.map gt r ~by_domain:0 with
  | Error "grant revoked" -> ()
  | _ -> Alcotest.fail "no use after revoke"

let test_grant_authorization () =
  let gt = Xc_hypervisor.Grant_table.create ~owner:1 ~capacity:2 in
  let r =
    match Xc_hypervisor.Grant_table.grant gt ~to_domain:2 ~frame:7 Xc_hypervisor.Grant_table.Read_write with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* Only the named grantee may map. *)
  (match Xc_hypervisor.Grant_table.map gt r ~by_domain:3 with
  | Error "grant is for another domain" -> ()
  | _ -> Alcotest.fail "wrong domain must be rejected");
  (match Xc_hypervisor.Grant_table.map gt 999 ~by_domain:2 with
  | Error "unknown grant reference" -> ()
  | _ -> Alcotest.fail "unknown ref");
  (* Capacity limit. *)
  ignore (Xc_hypervisor.Grant_table.grant gt ~to_domain:2 ~frame:8 Xc_hypervisor.Grant_table.Read_only);
  match Xc_hypervisor.Grant_table.grant gt ~to_domain:2 ~frame:9 Xc_hypervisor.Grant_table.Read_only with
  | Error "grant table full" -> ()
  | _ -> Alcotest.fail "capacity must bind"

let suites =
  [
    ( "os.socket",
      [
        Alcotest.test_case "lifecycle" `Quick test_socket_lifecycle;
        Alcotest.test_case "refusal/backlog" `Quick test_socket_refusal_and_backlog;
        Alcotest.test_case "EOF/broken pipe" `Quick test_socket_eof_and_broken_pipe;
        Alcotest.test_case "flow control" `Quick test_socket_flow_control;
        Alcotest.test_case "accept order" `Quick test_socket_accept_order;
      ] );
    ( "os.fd_table",
      [
        Alcotest.test_case "basics" `Quick test_fd_table_basics;
        Alcotest.test_case "errors" `Quick test_fd_table_errors;
        Alcotest.test_case "clone" `Quick test_fd_table_clone;
        Alcotest.test_case "unixbench loop" `Quick test_fd_table_unixbench_loop;
      ] );
    ( "hypervisor.grant_table",
      [
        Alcotest.test_case "lifecycle" `Quick test_grant_lifecycle;
        Alcotest.test_case "authorization" `Quick test_grant_authorization;
      ] );
  ]
