(* Tests for the signal-delivery protocol and Figure 2's __restore_rt:
   the rt_sigreturn trampoline keeps working after ABOM's two-phase
   9-byte rewrite. *)

open Xc_isa

(* Build an image with:
   - main: a syscall-39 wrapper call, then hlt;
   - handler: a nop, then ret (falls into the restorer via the frame);
   - __restore_rt: mov $0xf,%rax; syscall  (the exact Figure 2 bytes). *)
let build_scenario () =
  let img = Image.create ~size:4096 () in
  let main = 0 in
  (* main: mov eax,39; syscall; hlt  (inline, keeps offsets simple) *)
  let off = Image.emit_list img ~off:main [ Insn.Mov_eax_imm32 39; Syscall; Hlt ] in
  let handler = off + 8 in
  ignore (Image.emit_list img ~off:handler [ Insn.Nop; Ret ]);
  let restorer = handler + 16 in
  let restorer_end =
    Image.emit_list img ~off:restorer [ Insn.Mov_rax_imm32 15; Syscall ]
  in
  let sigreturn_syscall_off = restorer_end - 2 in
  (img, main, handler, restorer, sigreturn_syscall_off)

let run_to_halt m =
  match Machine.run ~fuel:10_000 m with
  | Machine.Halted -> ()
  | Fault msg -> Alcotest.fail msg
  | Fuel_exhausted -> Alcotest.fail "fuel"

let test_signal_roundtrip_trap_path () =
  let img, main, handler, restorer, _ = build_scenario () in
  let m = Machine.create img ~entry:main in
  (* Deliver before running: the interrupted context is main's start. *)
  Machine.deliver_signal m ~handler ~restorer;
  run_to_halt m;
  (* Trace: rt_sigreturn from the trampoline, then main's syscall 39. *)
  Alcotest.(check (list int)) "sigreturn then resumed work" [ 15; 39 ]
    (Machine.syscall_numbers m)

let test_signal_roundtrip_patched_path () =
  let img, main, handler, restorer, sigreturn_off = build_scenario () in
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  (* Patch __restore_rt ahead of time: the Figure 2 9-byte rewrite. *)
  (match Xc_abom.Patcher.patch_site patcher img ~syscall_off:sigreturn_off with
  | Xc_abom.Patcher.Patched_9byte -> ()
  | other -> Alcotest.failf "expected 9-byte patch, got %s"
               (Xc_abom.Patcher.outcome_to_string other));
  (match Image.insn_at img restorer with
  | Insn.Call_abs a, 7 ->
      Alcotest.(check int64) "entry 15" 0xffffffffff600078L a
  | _ -> Alcotest.fail "restorer not rewritten");
  let config = Xc_abom.Patcher.machine_config patcher () in
  let m = Machine.create ~config img ~entry:main in
  Machine.deliver_signal m ~handler ~restorer;
  run_to_halt m;
  let events = Machine.events m in
  Alcotest.(check (list int)) "same trace through the patched trampoline"
    [ 15; 39 ]
    (Machine.syscall_numbers m);
  (* The sigreturn went through the fast path. *)
  (match events with
  | first :: _ -> Alcotest.(check bool) "fast sigreturn" true (first.Machine.kind = `Fast)
  | [] -> Alcotest.fail "no events")

let test_signal_live_patching () =
  (* Two deliveries: the first traps (and ABOM patches __restore_rt on
     the fly), the second goes through the call. *)
  let img, main, handler, restorer, _ = build_scenario () in
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  let config = Xc_abom.Patcher.machine_config patcher () in
  let m = Machine.create ~config img ~entry:main in
  Machine.deliver_signal m ~handler ~restorer;
  run_to_halt m;
  Machine.reset m ~entry:main;
  Machine.deliver_signal m ~handler ~restorer;
  run_to_halt m;
  let sig15 =
    List.filter (fun (e : Machine.event) -> e.sysno = 15) (Machine.events m)
  in
  (match sig15 with
  | [ first; second ] ->
      Alcotest.(check bool) "first delivery trapped" true (first.kind = `Trap);
      Alcotest.(check bool) "second delivery fast" true (second.kind = `Fast)
  | _ -> Alcotest.fail "expected two sigreturns");
  (* Main's syscall was also patched (7-byte case 1) and resumed right. *)
  Alcotest.(check (list int)) "full trace" [ 15; 39; 15; 39 ]
    (Machine.syscall_numbers m)

let test_nested_handler_work () =
  (* The handler itself makes a syscall before returning: ordering must
     be handler's syscall, sigreturn, then the interrupted work. *)
  let img = Image.create ~size:4096 () in
  let main = 0 in
  ignore (Image.emit_list img ~off:main [ Insn.Mov_eax_imm32 1; Syscall; Hlt ]);
  let handler = 32 in
  ignore (Image.emit_list img ~off:handler [ Insn.Mov_eax_imm32 14; Syscall; Ret ]);
  let restorer = 64 in
  ignore (Image.emit_list img ~off:restorer [ Insn.Mov_rax_imm32 15; Syscall ]);
  let m = Machine.create img ~entry:main in
  Machine.deliver_signal m ~handler ~restorer;
  run_to_halt m;
  Alcotest.(check (list int)) "handler, sigreturn, resumed" [ 14; 15; 1 ]
    (Machine.syscall_numbers m)

let suites =
  [
    ( "isa.signals",
      [
        Alcotest.test_case "roundtrip via trap" `Quick test_signal_roundtrip_trap_path;
        Alcotest.test_case "roundtrip via patched trampoline" `Quick
          test_signal_roundtrip_patched_path;
        Alcotest.test_case "live patching across deliveries" `Quick
          test_signal_live_patching;
        Alcotest.test_case "nested handler work" `Quick test_nested_handler_work;
      ] );
  ]
