(* Integration tests: the paper's headline results, asserted as shapes.

   These run the same experiment code as the benchmark harness
   (Xcontainers.Figures) and check who wins, by roughly what factor, and
   where crossovers fall — the reproduction contract from DESIGN.md. *)

module Config = Xc_platforms.Config
module Figures = Xcontainers.Figures

let assoc name l =
  match List.assoc_opt name l with
  | Some v -> v
  | None -> Alcotest.failf "missing configuration %s" name

(* ---------------- Figure 4 ---------------- *)

let test_fig4_headline_27x () =
  let rel = Figures.fig4 Config.Amazon_ec2 ~concurrent:false in
  let xc = assoc "X-Container" rel in
  Alcotest.(check bool)
    (Printf.sprintf "XC raw syscall throughput 20-32x Docker (got %.1fx)" xc)
    true
    (xc > 20. && xc < 32.)

let test_fig4_gvisor_collapse () =
  let rel = Figures.fig4 Config.Amazon_ec2 ~concurrent:false in
  let g = assoc "gVisor" rel in
  Alcotest.(check bool) "gVisor at 5-10% of Docker" true (g > 0.04 && g < 0.11)

let test_fig4_clear_gap () =
  let rel = Figures.fig4 Config.Amazon_ec2 ~concurrent:false in
  let xc = assoc "X-Container" rel and clear = assoc "Clear-Container" rel in
  let gap = xc /. clear in
  Alcotest.(check bool)
    (Printf.sprintf "XC up to 1.6x Clear (got %.2fx)" gap)
    true (gap > 1.3 && gap < 1.9);
  Alcotest.(check bool) "Clear still well above Docker" true (clear > 5.)

let test_fig4_xen_pv_penalty () =
  let rel = Figures.fig4 Config.Amazon_ec2 ~concurrent:false in
  (* The Section 4.1 motivation: x86-64 PV syscall forwarding is slow. *)
  Alcotest.(check bool) "Xen-Container below Docker" true
    (assoc "Xen-Container" rel < 0.6)

let test_fig4_meltdown_immunity () =
  let rel = Figures.fig4 Config.Amazon_ec2 ~concurrent:false in
  (* Patch-immune platforms show identical patched/unpatched bars. *)
  Alcotest.(check (float 1e-6)) "XC immune" (assoc "X-Container" rel)
    (assoc "X-Container-unpatched" rel);
  Alcotest.(check (float 1e-6)) "Clear immune" (assoc "Clear-Container" rel)
    (assoc "Clear-Container-unpatched" rel);
  Alcotest.(check bool) "Docker unpatched much faster" true
    (assoc "Docker-unpatched" rel > 2.)

(* ---------------- Figure 3 ---------------- *)

let rel_tput cloud app =
  Figures.relative_throughput (Figures.fig3 cloud app)

let test_fig3_nginx () =
  let amazon = assoc "X-Container" (rel_tput Config.Amazon_ec2 Figures.Nginx_ab) in
  let google = assoc "X-Container" (rel_tput Config.Google_gce Figures.Nginx_ab) in
  (* Paper: 21% to 50% improvement over Docker. *)
  Alcotest.(check bool)
    (Printf.sprintf "nginx XC wins on both clouds (%.2f, %.2f)" amazon google)
    true
    (amazon > 1.15 && amazon < 1.6 && google > 1.15 && google < 1.75)

let test_fig3_memcached () =
  let amazon = assoc "X-Container" (rel_tput Config.Amazon_ec2 Figures.Memcached_app) in
  let google = assoc "X-Container" (rel_tput Config.Google_gce Figures.Memcached_app) in
  (* Paper: 134% to 208% of Docker. *)
  Alcotest.(check bool)
    (Printf.sprintf "memcached XC 1.34-2.08x (%.2f, %.2f)" amazon google)
    true
    (Float.min amazon google > 1.25 && Float.max amazon google < 2.1)

let test_fig3_redis () =
  let amazon = assoc "X-Container" (rel_tput Config.Amazon_ec2 Figures.Redis_app) in
  (* Paper: comparable to Docker (with stronger isolation). *)
  Alcotest.(check bool)
    (Printf.sprintf "redis XC comparable (%.2f)" amazon)
    true (amazon > 0.85 && amazon < 1.3)

let test_fig3_gvisor_and_clear_lose () =
  List.iter
    (fun app ->
      let rel = rel_tput Config.Amazon_ec2 app in
      Alcotest.(check bool) "gVisor far below Docker" true (assoc "gVisor" rel < 0.5);
      Alcotest.(check bool) "Clear below Docker" true
        (assoc "Clear-Container" rel < 1.0);
      Alcotest.(check bool) "Xen-Container below Docker" true
        (assoc "Xen-Container" rel < 1.0))
    Figures.macro_apps

let test_fig3_latency_inverts () =
  let results = Figures.fig3 Config.Amazon_ec2 Figures.Memcached_app in
  let lat = Figures.relative_latency results in
  (* Winners on throughput have lower relative latency. *)
  Alcotest.(check bool) "XC latency below Docker" true (assoc "X-Container" lat < 1.0);
  Alcotest.(check bool) "gVisor latency explodes" true (assoc "gVisor" lat > 5.)

(* ---------------- Figure 5 ---------------- *)

let fig5 test = Figures.fig5 Config.Amazon_ec2 ~concurrent:false test

let test_fig5_xc_strengths () =
  Alcotest.(check bool) "file copy >2x" true
    (assoc "X-Container" (fig5 Xc_apps.Unixbench.File_copy) > 2.);
  Alcotest.(check bool) "pipe >2x" true
    (assoc "X-Container" (fig5 Xc_apps.Unixbench.Pipe_throughput) > 2.)

let test_fig5_xc_weaknesses () =
  (* Section 5.4: page-table operations go through the X-Kernel. *)
  Alcotest.(check bool) "context switching < Docker" true
    (assoc "X-Container" (fig5 Xc_apps.Unixbench.Context_switching) < 1.0);
  Alcotest.(check bool) "process creation < Docker" true
    (assoc "X-Container" (fig5 Xc_apps.Unixbench.Process_creation) < 1.0)

let test_fig5_meltdown_on_micro () =
  (* Unpatched Docker clearly faster on syscall-bound microbenchmarks. *)
  Alcotest.(check bool) "file copy unpatched docker" true
    (assoc "Docker-unpatched" (fig5 Xc_apps.Unixbench.File_copy) > 1.4)

let test_fig5_iperf () =
  let rel = fig5 Xc_apps.Unixbench.Iperf in
  Alcotest.(check bool) "XC wire-bound like Docker" true
    (assoc "X-Container" rel > 0.9);
  Alcotest.(check bool) "gVisor collapses" true (assoc "gVisor" rel < 0.3);
  Alcotest.(check bool) "Clear penalised" true (assoc "Clear-Container" rel < 0.9)

(* ---------------- Figure 8 ---------------- *)

let test_fig8_shapes () =
  let results = Figures.fig8 () in
  let points runtime = List.assoc runtime results in
  let tput runtime n =
    match
      List.find_opt (fun (p : Xc_apps.Scalability.point) -> p.containers = n)
        (points runtime)
    with
    | Some p -> p.throughput_rps
    | None -> Alcotest.failf "no point at %d" n
  in
  (* Docker ahead in the mid-range, XC ahead by ~18% at 400. *)
  Alcotest.(check bool) "docker ahead at 200" true
    (tput Config.Docker 200 > tput Config.X_container 200);
  let r400 = tput Config.X_container 400 /. tput Config.Docker 400 in
  Alcotest.(check bool)
    (Printf.sprintf "XC +10-30%% at 400 (got %+.0f%%)" ((r400 -. 1.) *. 100.))
    true (r400 > 1.10 && r400 < 1.30);
  (* Docker's curve must decline from its peak. *)
  Alcotest.(check bool) "docker declines" true
    (tput Config.Docker 400 < 0.9 *. tput Config.Docker 200)

let test_fig8_vm_ceilings () =
  let results = Figures.fig8 () in
  let booted runtime n =
    match
      List.find_opt (fun (p : Xc_apps.Scalability.point) -> p.containers = n)
        (List.assoc runtime results)
    with
    | Some p -> p.booted
    | None -> false
  in
  Alcotest.(check bool) "PV dies above 250" true
    (booted Config.Xen_pv 250 && not (booted Config.Xen_pv 300));
  Alcotest.(check bool) "HVM dies above 200" true
    (booted Config.Xen_hvm 200 && not (booted Config.Xen_hvm 250))

(* ---------------- Table 1 ---------------- *)

let test_table1_all_rows () =
  let rows = Figures.table1 ~invocations:20_000 () in
  Alcotest.(check int) "twelve rows" 12 (List.length rows);
  List.iter
    (fun (m : Xc_apps.Profiles.measurement) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within 2pp of paper (%.3f vs %.3f)" m.profile.name
           m.auto_reduction m.profile.paper_reduction)
        true
        (Float.abs (m.auto_reduction -. m.profile.paper_reduction) < 0.02))
    rows

(* ---------------- Figure 6 / 9 round-up ---------------- *)

let test_fig6_summary () =
  let r = Figures.fig6 () in
  Alcotest.(check int) "three 1-worker bars" 3 (List.length r.nginx_1worker);
  Alcotest.(check int) "two 4-worker bars" 2 (List.length r.nginx_4workers);
  (* Graphene(2): shared+dedicated impossible; Unikernel(2); X(3). *)
  Alcotest.(check int) "five php bars" 5 (List.length r.php_mysql)

let test_fig9_order () =
  let results = Figures.fig9 () in
  let tputs = List.map (fun (r : Xc_apps.Lb_experiment.result) -> r.throughput_rps) results in
  (* Strictly increasing in the order Docker, XC-haproxy, NAT, DR. *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "figure 9 ordering" true (increasing tputs)

let suites =
  [
    ( "shapes.fig4",
      [
        Alcotest.test_case "27x headline" `Quick test_fig4_headline_27x;
        Alcotest.test_case "gvisor collapse" `Quick test_fig4_gvisor_collapse;
        Alcotest.test_case "clear gap" `Quick test_fig4_clear_gap;
        Alcotest.test_case "xen pv penalty" `Quick test_fig4_xen_pv_penalty;
        Alcotest.test_case "meltdown immunity" `Quick test_fig4_meltdown_immunity;
      ] );
    ( "shapes.fig3",
      [
        Alcotest.test_case "nginx" `Slow test_fig3_nginx;
        Alcotest.test_case "memcached" `Slow test_fig3_memcached;
        Alcotest.test_case "redis" `Slow test_fig3_redis;
        Alcotest.test_case "gvisor/clear lose" `Slow test_fig3_gvisor_and_clear_lose;
        Alcotest.test_case "latency inverts" `Slow test_fig3_latency_inverts;
      ] );
    ( "shapes.fig5",
      [
        Alcotest.test_case "xc strengths" `Quick test_fig5_xc_strengths;
        Alcotest.test_case "xc weaknesses" `Quick test_fig5_xc_weaknesses;
        Alcotest.test_case "meltdown on micro" `Quick test_fig5_meltdown_on_micro;
        Alcotest.test_case "iperf" `Quick test_fig5_iperf;
      ] );
    ( "shapes.fig8",
      [
        Alcotest.test_case "crossover" `Quick test_fig8_shapes;
        Alcotest.test_case "vm ceilings" `Quick test_fig8_vm_ceilings;
      ] );
    ("shapes.table1", [ Alcotest.test_case "all rows" `Slow test_table1_all_rows ]);
    ( "shapes.fig6_fig9",
      [
        Alcotest.test_case "fig6 summary" `Quick test_fig6_summary;
        Alcotest.test_case "fig9 ordering" `Quick test_fig9_order;
      ] );
  ]
