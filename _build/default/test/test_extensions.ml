(* Tests for the beyond-paper extensions: ablation, ballooning, tmem,
   live migration, cloning, the security analysis and the open-loop
   driver. *)

module Config = Xc_platforms.Config

(* ---------------- Ablation ---------------- *)

let web_shape =
  Xc_platforms.Ablation.shape ~syscalls:10 ~irqs:3 ~hops:2 ~coverage:0.95

let test_ablation_ordering () =
  let rel knob =
    Xc_platforms.Ablation.relative_throughput knob web_shape
      ~base_service_ns:20_000.
  in
  Alcotest.(check (float 1e-9)) "full is 1.0" 1.0 (rel Xc_platforms.Ablation.Full);
  List.iter
    (fun knob ->
      Alcotest.(check bool)
        (Xc_platforms.Ablation.knob_name knob ^ " costs throughput")
        true
        (rel knob < 1.0))
    Xc_platforms.Ablation.[ No_abom; No_global_bit; No_direct_events; No_user_iret ];
  (* Removing everything is worse than removing any single mechanism. *)
  List.iter
    (fun knob ->
      Alcotest.(check bool) "stock PV worst" true
        (rel Xc_platforms.Ablation.Stock_pv <= rel knob))
    Xc_platforms.Ablation.[ No_abom; No_global_bit; No_direct_events; No_user_iret ];
  (* The SMP customization is a gain. *)
  Alcotest.(check bool) "smp off is a gain" true
    (rel Xc_platforms.Ablation.Smp_disabled > 1.0)

let test_ablation_additivity () =
  let d knob = Xc_platforms.Ablation.service_delta_ns knob web_shape in
  let sum =
    d No_abom +. d No_global_bit +. d No_direct_events +. d No_user_iret
  in
  Alcotest.(check (float 1e-6)) "stock PV = sum of parts" sum
    (d Xc_platforms.Ablation.Stock_pv)

let test_ablation_coverage_matters () =
  let low = Xc_platforms.Ablation.shape ~syscalls:10 ~irqs:0 ~hops:0 ~coverage:0.4 in
  let high = Xc_platforms.Ablation.shape ~syscalls:10 ~irqs:0 ~hops:0 ~coverage:1.0 in
  (* Removing ABOM hurts more when coverage was high. *)
  Alcotest.(check bool) "high coverage loses more" true
    (Xc_platforms.Ablation.service_delta_ns No_abom high
    > Xc_platforms.Ablation.service_delta_ns No_abom low)

(* ---------------- Balloon ---------------- *)

let make_balloon mb =
  let d = Xc_hypervisor.Domain.create ~id:1 ~kind:Xc_hypervisor.Domain.Domu ~vcpus:1 ~memory_mb:mb in
  Xc_hypervisor.Balloon.create ~domain:d

let test_balloon_targets () =
  let b = make_balloon 256 in
  Alcotest.(check int) "starts deflated" 256 (Xc_hypervisor.Balloon.guest_usable_mb b);
  (match Xc_hypervisor.Balloon.set_target b ~usable_mb:128 with
  | Ok freed -> Alcotest.(check int) "freed 128" 128 freed
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "ballooned" 128 (Xc_hypervisor.Balloon.ballooned_mb b);
  (match Xc_hypervisor.Balloon.set_target b ~usable_mb:200 with
  | Ok freed -> Alcotest.(check int) "deflate returns negative" (-72) freed
  | Error e -> Alcotest.fail e);
  (match Xc_hypervisor.Balloon.set_target b ~usable_mb:32 with
  | Error _ -> () (* below the 64MB floor of Section 5.6 *)
  | Ok _ -> Alcotest.fail "below floor must fail");
  match Xc_hypervisor.Balloon.set_target b ~usable_mb:512 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "above reservation must fail"

let test_balloon_pool_reclaim () =
  let pool = Xc_hypervisor.Balloon.pool ~host_mb:1024 in
  let b1 = make_balloon 512 and b2 = make_balloon 512 in
  Xc_hypervisor.Balloon.attach pool b1;
  Xc_hypervisor.Balloon.attach pool b2;
  Alcotest.(check int) "committed" 1024 (Xc_hypervisor.Balloon.pool_committed_mb pool);
  let freed = Xc_hypervisor.Balloon.reclaim pool ~need_mb:300 in
  Alcotest.(check int) "reclaimed" 300 freed;
  Alcotest.(check int) "host free grew" 300 (Xc_hypervisor.Balloon.pool_free_mb pool);
  (* Cannot reclaim past the floors: 2 x (512-64) = 896 max total. *)
  let more = Xc_hypervisor.Balloon.reclaim pool ~need_mb:10_000 in
  Alcotest.(check int) "bounded by floors" (896 - 300) more

let test_balloon_cost_scales () =
  Alcotest.(check bool) "bigger balloon costs more" true
    (Xc_hypervisor.Balloon.inflate_cost_ns ~mb:100
    > Xc_hypervisor.Balloon.inflate_cost_ns ~mb:10)

(* ---------------- Tmem ---------------- *)

let test_tmem_put_get () =
  let t = Xc_hypervisor.Tmem.create ~capacity_pages:4 in
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:10;
  Alcotest.(check bool) "hit" true (Xc_hypervisor.Tmem.get t ~domain_id:1 ~key:10 = `Hit);
  (* Exclusive get: the page is gone. *)
  Alcotest.(check bool) "second get misses" true
    (Xc_hypervisor.Tmem.get t ~domain_id:1 ~key:10 = `Miss);
  (* Domain isolation of keys. *)
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:7;
  Alcotest.(check bool) "other domain misses" true
    (Xc_hypervisor.Tmem.get t ~domain_id:2 ~key:7 = `Miss)

let test_tmem_eviction_lru () =
  let t = Xc_hypervisor.Tmem.create ~capacity_pages:2 in
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:1;
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:2;
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:3 (* evicts key 1 *);
  Alcotest.(check int) "at capacity" 2 (Xc_hypervisor.Tmem.stored_pages t);
  Alcotest.(check bool) "oldest evicted" true
    (Xc_hypervisor.Tmem.get t ~domain_id:1 ~key:1 = `Miss);
  Alcotest.(check bool) "recent kept" true
    (Xc_hypervisor.Tmem.get t ~domain_id:1 ~key:3 = `Hit)

let test_tmem_flush_domain () =
  let t = Xc_hypervisor.Tmem.create ~capacity_pages:8 in
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:1;
  Xc_hypervisor.Tmem.put t ~domain_id:1 ~key:2;
  Xc_hypervisor.Tmem.put t ~domain_id:2 ~key:1;
  Alcotest.(check int) "flushed two" 2 (Xc_hypervisor.Tmem.flush_domain t ~domain_id:1);
  Alcotest.(check int) "one left" 1 (Xc_hypervisor.Tmem.stored_pages t);
  Alcotest.(check bool) "hit saving positive" true (Xc_hypervisor.Tmem.hit_saving_ns > 0.)

(* ---------------- Density ---------------- *)

let test_density_policies () =
  let static = Xc_apps.Density.run Xc_apps.Density.Static in
  let balloon = Xc_apps.Density.run Xc_apps.Density.Balloon in
  let tmem = Xc_apps.Density.run Xc_apps.Density.Balloon_tmem in
  Alcotest.(check int) "static = memory / reservation" ((96 * 1024 - 1024) / 128)
    static.containers;
  Alcotest.(check bool) "ballooning packs 1.5-1.8x more" true
    (let g = Xc_apps.Density.density_gain static balloon in
     g > 1.5 && g < 1.8);
  Alcotest.(check bool) "tmem trades density for cache" true
    (tmem.containers < balloon.containers && tmem.containers > static.containers);
  Alcotest.(check bool) "tmem pool exists" true (tmem.tmem_pool_mb > 1000);
  Alcotest.(check bool) "cache hits estimated" true
    (tmem.est_page_cache_hit_gain > 0.3);
  Alcotest.(check int) "static has no pool" 0 static.tmem_pool_mb

let test_density_active_fraction () =
  (* Busier fleets balloon less, so they pack fewer containers. *)
  let calm = Xc_apps.Density.run ~active_fraction:0.1 Xc_apps.Density.Balloon in
  let busy = Xc_apps.Density.run ~active_fraction:0.8 Xc_apps.Density.Balloon in
  Alcotest.(check bool) "calmer packs more" true (calm.containers > busy.containers)

(* ---------------- Migration ---------------- *)

let test_migration_idle_guest () =
  let params =
    { (Xc_hypervisor.Migration.default_params ~memory_mb:128) with dirty_pages_per_s = 0. }
  in
  let r = Xc_hypervisor.Migration.migrate params in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check int) "one round" 1 (List.length r.rounds);
  Alcotest.(check int) "sent everything once" (128 * 256) r.total_pages_sent;
  Alcotest.(check bool) "short downtime" true (r.downtime_ns < 10e6)

let test_migration_busy_guest () =
  let base = Xc_hypervisor.Migration.default_params ~memory_mb:128 in
  let calm = Xc_hypervisor.Migration.migrate { base with dirty_pages_per_s = 2_000. } in
  let busy = Xc_hypervisor.Migration.migrate { base with dirty_pages_per_s = 20_000. } in
  Alcotest.(check bool) "busier guest, more rounds" true
    (List.length busy.rounds > List.length calm.rounds);
  Alcotest.(check bool) "busier guest, longer downtime" true
    (busy.downtime_ns >= calm.downtime_ns)

let test_migration_divergence () =
  (* Dirty rate above the link's page rate never converges. *)
  let params =
    {
      (Xc_hypervisor.Migration.default_params ~memory_mb:64) with
      dirty_pages_per_s = 1e6;
      max_rounds = 10;
    }
  in
  let r = Xc_hypervisor.Migration.migrate params in
  Alcotest.(check bool) "did not converge" false r.converged;
  Alcotest.(check int) "capped rounds" 10 (List.length r.rounds);
  Alcotest.(check bool) "budget check works" false
    (Xc_hypervisor.Migration.downtime_budget_met r ~budget_ns:1e6)

(* ---------------- Cloning ---------------- *)

let test_cloning_speedups () =
  let s = Xcontainers.Cloning.snapshot_of_parent ~memory_mb:128 ~resident_pages:2048 in
  let c = Xcontainers.Cloning.clone s in
  Alcotest.(check bool) "clone under 20ms" true (c.total_ns < 20e6);
  Alcotest.(check bool) "clone >100x faster than cold boot" true
    (Xcontainers.Cloning.speedup_vs_cold_boot s > 100.);
  Alcotest.(check bool) "still faster than LightVM boot" true
    (Xcontainers.Cloning.speedup_vs_lightvm_boot s > 1.);
  Alcotest.(check bool) "bigger working set, slower clone" true
    ((Xcontainers.Cloning.clone
        (Xcontainers.Cloning.snapshot_of_parent ~memory_mb:128 ~resident_pages:20_000)).total_ns
    > c.total_ns)

(* ---------------- Security ---------------- *)

let test_security_tcb_ranking () =
  let tcb r = (Xcontainers.Security.profile_of r).tcb_kloc in
  Alcotest.(check bool) "xc tcb tiny vs docker" true
    (tcb Config.X_container * 20 < tcb Config.Docker);
  Alcotest.(check bool) "gvisor keeps host kernel in tcb" true
    (tcb Config.Gvisor >= tcb Config.Docker);
  Alcotest.(check bool) "relative tcb ~0.016" true
    (let r = Xcontainers.Security.relative_tcb Config.X_container in
     r > 0.005 && r < 0.05)

let test_security_exposure () =
  let e r = Xcontainers.Security.vulnerability_exposure (Xcontainers.Security.profile_of r) in
  Alcotest.(check (float 1e-9)) "docker is the unit" 1.0 (e Config.Docker);
  Alcotest.(check bool) "xc orders of magnitude lower" true
    (e Config.X_container < 0.01);
  Alcotest.(check bool) "clear between" true
    (e Config.Clear_container > e Config.X_container
    && e Config.Clear_container < e Config.Docker)

let test_security_meltdown_column () =
  let needs r = (Xcontainers.Security.profile_of r).needs_guest_meltdown_patch in
  (* The Section 5.1 setup: XC and Clear run unpatched on the syscall
     path, Docker and Xen-Container cannot. *)
  Alcotest.(check bool) "docker needs" true (needs Config.Docker);
  Alcotest.(check bool) "xen-container needs" true (needs Config.Xen_container);
  Alcotest.(check bool) "xc does not" false (needs Config.X_container);
  Alcotest.(check bool) "clear does not" false (needs Config.Clear_container)

(* ---------------- Open loop ---------------- *)

let ol_server service units =
  { Xc_platforms.Closed_loop.units; service_ns = (fun _ -> service); overhead_ns = 0. }

let test_open_loop_low_load () =
  let r =
    Xc_platforms.Open_loop.run
      (Xc_platforms.Open_loop.config ~rate_rps:1_000. ())
      (ol_server 20_000. 4)
  in
  (* Far below capacity: completes what is offered; latency ~ service. *)
  Alcotest.(check bool) "completes offered" true
    (Float.abs (r.completed_rps -. 1_000.) /. 1_000. < 0.1);
  Alcotest.(check bool) "latency near service" true
    (r.p50_ns < 1.5 *. 20_000.)

let test_open_loop_saturation_tail () =
  let run rate =
    Xc_platforms.Open_loop.run
      (Xc_platforms.Open_loop.config ~rate_rps:rate ())
      (ol_server 20_000. 1)
  in
  let low = run 10_000. (* 20% load *) in
  let high = run 45_000. (* 90% load *) in
  Alcotest.(check bool) "tail grows with load" true (high.p99_ns > 2. *. low.p99_ns);
  Alcotest.(check bool) "queue builds" true (high.max_queue > low.max_queue)

let test_open_loop_overload () =
  let r =
    Xc_platforms.Open_loop.run
      (Xc_platforms.Open_loop.config ~rate_rps:100_000. ())
      (ol_server 20_000. 1)
  in
  (* Past capacity (50k/s): completion pegged at capacity. *)
  Alcotest.(check bool) "pegged at capacity" true
    (r.completed_rps < 55_000. && r.completed_rps > 45_000.);
  Alcotest.(check bool) "utilization over 1" true
    (Xc_platforms.Open_loop.utilization r ~service_ns:20_000. ~units:1 > 1.)

let test_open_loop_deterministic () =
  let cfg = Xc_platforms.Open_loop.config ~rate_rps:5_000. () in
  let a = Xc_platforms.Open_loop.run cfg (ol_server 20_000. 2) in
  let b = Xc_platforms.Open_loop.run cfg (ol_server 20_000. 2) in
  Alcotest.(check (float 1e-9)) "deterministic" a.completed_rps b.completed_rps

let suites =
  [
    ( "ext.ablation",
      [
        Alcotest.test_case "ordering" `Quick test_ablation_ordering;
        Alcotest.test_case "additivity" `Quick test_ablation_additivity;
        Alcotest.test_case "coverage matters" `Quick test_ablation_coverage_matters;
      ] );
    ( "ext.balloon",
      [
        Alcotest.test_case "targets" `Quick test_balloon_targets;
        Alcotest.test_case "pool reclaim" `Quick test_balloon_pool_reclaim;
        Alcotest.test_case "cost scales" `Quick test_balloon_cost_scales;
      ] );
    ( "ext.tmem",
      [
        Alcotest.test_case "put/get" `Quick test_tmem_put_get;
        Alcotest.test_case "LRU eviction" `Quick test_tmem_eviction_lru;
        Alcotest.test_case "flush domain" `Quick test_tmem_flush_domain;
      ] );
    ( "ext.density",
      [
        Alcotest.test_case "policies" `Quick test_density_policies;
        Alcotest.test_case "active fraction" `Quick test_density_active_fraction;
      ] );
    ( "ext.migration",
      [
        Alcotest.test_case "idle guest" `Quick test_migration_idle_guest;
        Alcotest.test_case "busy guest" `Quick test_migration_busy_guest;
        Alcotest.test_case "divergence" `Quick test_migration_divergence;
      ] );
    ("ext.cloning", [ Alcotest.test_case "speedups" `Quick test_cloning_speedups ]);
    ( "ext.security",
      [
        Alcotest.test_case "tcb ranking" `Quick test_security_tcb_ranking;
        Alcotest.test_case "exposure" `Quick test_security_exposure;
        Alcotest.test_case "meltdown column" `Quick test_security_meltdown_column;
      ] );
    ( "ext.open_loop",
      [
        Alcotest.test_case "low load" `Quick test_open_loop_low_load;
        Alcotest.test_case "saturation tail" `Quick test_open_loop_saturation_tail;
        Alcotest.test_case "overload" `Quick test_open_loop_overload;
        Alcotest.test_case "deterministic" `Quick test_open_loop_deterministic;
      ] );
  ]
