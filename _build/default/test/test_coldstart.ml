(* Tests for the serverless cold-start extension. *)

module C = Xc_apps.Coldstart

let test_spawn_ordering () =
  Alcotest.(check bool) "clone fastest" true
    (C.spawn_ns C.Xc_clone < C.spawn_ns C.Xc_cold_lightvm);
  Alcotest.(check bool) "lightvm beats docker" true
    (C.spawn_ns C.Xc_cold_lightvm < C.spawn_ns C.Docker_spawn);
  Alcotest.(check bool) "docker beats xl" true
    (C.spawn_ns C.Docker_spawn < C.spawn_ns C.Xc_cold_xl)

let test_spawn_times_match_boot_models () =
  (* The inline constants must track the Boot/Cloning models. *)
  Alcotest.(check (float 1e6)) "xl" (Xcontainers.Boot.xcontainer ()).total_ns
    (C.spawn_ns C.Xc_cold_xl);
  Alcotest.(check (float 1e6)) "lightvm"
    (Xcontainers.Boot.xcontainer ~toolstack:Xcontainers.Boot.Lightvm ()).total_ns
    (C.spawn_ns C.Xc_cold_lightvm);
  Alcotest.(check (float 1e6)) "docker" (Xcontainers.Boot.docker ()).total_ns
    (C.spawn_ns C.Docker_spawn);
  let clone =
    Xcontainers.Cloning.clone
      (Xcontainers.Cloning.snapshot_of_parent ~memory_mb:128 ~resident_pages:2048)
  in
  Alcotest.(check (float 2e5)) "clone" clone.total_ns (C.spawn_ns C.Xc_clone)

let test_sparse_traffic_all_cold () =
  (* Gaps far above the keep-alive: every invocation is cold. *)
  let config =
    { (C.default_config ~rate_rps:0.005) with duration_ns = 3000e9 }
  in
  let r = C.run C.Xc_clone config in
  Alcotest.(check bool) "ran some" true (r.invocations > 3);
  Alcotest.(check bool) "nearly all cold" true (r.cold_fraction > 0.9)

let test_dense_traffic_mostly_warm () =
  let r = C.run C.Docker_spawn (C.default_config ~rate_rps:1.0) in
  Alcotest.(check bool) "mostly warm" true (r.cold_fraction < 0.1);
  (* Warm p50 is just the function time. *)
  Alcotest.(check bool) "p50 = service" true
    (Float.abs (r.p50_latency_ns -. 50e6) < 5e6)

let test_tail_reflects_spawn_path () =
  (* At a rate straddling the keep-alive, the p99 is the cold path. *)
  let config = C.default_config ~rate_rps:0.05 in
  let xl = C.run C.Xc_cold_xl config in
  let clone = C.run C.Xc_clone config in
  (* Spawn time shifts the keep-alive windows slightly, so the cold
     counts may differ by a little, not a lot. *)
  Alcotest.(check bool) "similar cold fraction" true
    (Float.abs (xl.cold_fraction -. clone.cold_fraction) < 0.15);
  Alcotest.(check bool) "xl tail ~3s" true (xl.p99_latency_ns > 2e9);
  Alcotest.(check bool) "clone tail ~56ms" true (clone.p99_latency_ns < 100e6);
  Alcotest.(check bool) "clone tail >30x better" true
    (xl.p99_latency_ns /. clone.p99_latency_ns > 30.)

let test_validation () =
  Alcotest.check_raises "rate" (Invalid_argument "Coldstart.run: rate") (fun () ->
      ignore (C.run C.Xc_clone (C.default_config ~rate_rps:0.)))

let suites =
  [
    ( "coldstart",
      [
        Alcotest.test_case "spawn ordering" `Quick test_spawn_ordering;
        Alcotest.test_case "matches boot models" `Quick
          test_spawn_times_match_boot_models;
        Alcotest.test_case "sparse all cold" `Quick test_sparse_traffic_all_cold;
        Alcotest.test_case "dense mostly warm" `Quick test_dense_traffic_mostly_warm;
        Alcotest.test_case "tail reflects spawn path" `Quick
          test_tail_reflects_spawn_path;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
