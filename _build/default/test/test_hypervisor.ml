(* Tests for the exokernel layer: hypercalls, domains, event channels,
   the PV MMU's validation rules, the credit scheduler, split drivers and
   the X-Kernel ABI differences. *)

open Xc_hypervisor

(* ---------------- Hypercalls ---------------- *)

let test_hypercall_surface () =
  (* The Section 3.4 argument: a small, enumerable attack surface. *)
  Alcotest.(check int) "surface" (List.length Hypercall.all) (Hypercall.surface_size ());
  Alcotest.(check bool) "far below Linux's ~350 syscalls" true
    (Hypercall.surface_size () < Xkernel.linux_host_syscall_surface / 10)

let test_hypercall_counting () =
  let t = Hypercall.create () in
  let c1 = Hypercall.invoke t Hypercall.Sched_op in
  let _ = Hypercall.invoke t Hypercall.Sched_op in
  let _ = Hypercall.invoke t Hypercall.Mmu_update in
  Alcotest.(check bool) "cost positive" true (c1 > 0.);
  Alcotest.(check int) "sched_op twice" 2 (Hypercall.invocations t Hypercall.Sched_op);
  Alcotest.(check int) "total" 3 (Hypercall.total_invocations t);
  Alcotest.(check int) "uninvoked" 0 (Hypercall.invocations t Hypercall.Iret)

let test_hypercall_costs () =
  Alcotest.(check bool) "mmu_update dearer than sched_op" true
    (Hypercall.cost_ns Hypercall.Mmu_update > Hypercall.cost_ns Hypercall.Sched_op);
  List.iter
    (fun k ->
      Alcotest.(check bool) (Hypercall.name k) true (Hypercall.cost_ns k > 0.))
    Hypercall.all

(* ---------------- Domains and the X-Kernel ---------------- *)

let test_domain_validation () =
  Alcotest.check_raises "zero vcpus"
    (Invalid_argument "Domain.create: need at least one vcpu") (fun () ->
      ignore (Domain.create ~id:1 ~kind:Domain.Domu ~vcpus:0 ~memory_mb:128))

let test_xkernel_memory_gate () =
  let xk = Xkernel.create ~pcpus:4 ~memory_mb:2048 () in
  (* Dom0 holds 1024MB; one 512MB guest fits, the second does not. *)
  (match Xkernel.create_domain xk ~vcpus:1 ~memory_mb:512 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Xkernel.create_domain xk ~vcpus:1 ~memory_mb:1024 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must run out of memory");
  Alcotest.(check int) "free accounted" 512 (Xkernel.free_memory_mb xk)

let test_xkernel_destroy_returns_memory () =
  let xk = Xkernel.create ~pcpus:4 ~memory_mb:4096 () in
  let d =
    match Xkernel.create_domain xk ~vcpus:2 ~memory_mb:1024 with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "vcpus attached" 2
    (Credit_scheduler.vcpu_count (Xkernel.scheduler xk));
  Xkernel.destroy_domain xk d;
  Alcotest.(check int) "memory back" (4096 - 1024) (Xkernel.free_memory_mb xk);
  Alcotest.(check int) "vcpus detached" 0
    (Credit_scheduler.vcpu_count (Xkernel.scheduler xk));
  Alcotest.(check bool) "domain shut down" true (Domain.state d = Domain.Shutdown)

let test_xkernel_abi_differences () =
  let xen = Xkernel.create ~abi:Xkernel.stock_xen_abi ~pcpus:4 ~memory_mb:4096 () in
  let xk = Xkernel.create ~abi:Xkernel.xkernel_abi ~pcpus:4 ~memory_mb:4096 () in
  Alcotest.(check bool) "forwarding cheaper on X-Kernel" true
    (Xkernel.syscall_forward_cost_ns xk < Xkernel.syscall_forward_cost_ns xen);
  Alcotest.(check bool) "iret cheaper on X-Kernel" true
    (Xkernel.iret_cost_ns xk < Xkernel.iret_cost_ns xen);
  Alcotest.(check bool) "event delivery direct" true
    (Xkernel.event_delivery xk = Event_channel.Direct_user_mode);
  Alcotest.(check bool) "stock delivery via hypervisor" true
    (Xkernel.event_delivery xen = Event_channel.Via_hypervisor)

let test_tcb_comparison () =
  let xk = Xkernel.create ~pcpus:4 ~memory_mb:4096 () in
  Alcotest.(check bool) "TCB 50x smaller than a Linux host" true
    (Xkernel.tcb_kloc xk * 50 < Xkernel.linux_host_tcb_kloc)

let test_dom0_protected () =
  let xk = Xkernel.create ~pcpus:4 ~memory_mb:4096 () in
  Alcotest.(check bool) "dom0 privileged" true (Domain.is_privileged (Xkernel.dom0 xk));
  Alcotest.check_raises "cannot destroy dom0" (Invalid_argument "cannot destroy Dom0")
    (fun () -> Xkernel.destroy_domain xk (Xkernel.dom0 xk))

(* ---------------- Event channels ---------------- *)

let test_event_channel_basic () =
  let ec = Event_channel.create Event_channel.Via_hypervisor in
  Event_channel.bind ec ~port:3;
  Event_channel.bind ec ~port:1;
  Alcotest.(check bool) "bound" true (Event_channel.is_bound ec ~port:3);
  ignore (Event_channel.notify ec ~port:3);
  ignore (Event_channel.notify ec ~port:1);
  ignore (Event_channel.notify ec ~port:1);
  (* Pending is a set, delivered in port order. *)
  Alcotest.(check (list int)) "pending" [ 1; 3 ] (Event_channel.pending ec);
  let seen = ref [] in
  let _cost = Event_channel.deliver_pending ec (fun p -> seen := p :: !seen) in
  Alcotest.(check (list int)) "delivered in order" [ 1; 3 ] (List.rev !seen);
  Alcotest.(check int) "count" 2 (Event_channel.delivered_count ec);
  Alcotest.(check (list int)) "cleared" [] (Event_channel.pending ec)

let test_event_channel_unbound () =
  let ec = Event_channel.create Event_channel.Via_hypervisor in
  Alcotest.check_raises "unbound" (Invalid_argument "Event_channel.notify: unbound port")
    (fun () -> ignore (Event_channel.notify ec ~port:9))

let test_event_delivery_costs () =
  (* Section 4.2: direct user-mode delivery must beat the upcall. *)
  let deliver mode =
    let ec = Event_channel.create mode in
    Event_channel.bind ec ~port:1;
    ignore (Event_channel.notify ec ~port:1);
    Event_channel.deliver_pending ec (fun _ -> ())
  in
  Alcotest.(check bool) "direct cheaper" true
    (deliver Event_channel.Direct_user_mode < deliver Event_channel.Via_hypervisor)

(* ---------------- PV MMU ---------------- *)

let make_mmu () =
  Pv_mmu.create ~hypercalls:(Hypercall.create ())
    ~hypervisor_frames:(fun pfn -> pfn < 256)
    ~owned:(fun ~domain_id ~pfn -> pfn / 4096 = domain_id)
    ~page_table_frame:(fun pfn -> pfn land 0xfff = 42)

let test_pv_mmu_valid_batch () =
  let mmu = make_mmu () in
  let table = Xc_mem.Page_table.create () in
  let entries =
    List.init 8 (fun i -> (100 + i, Xc_mem.Pte.make ~pfn:(4096 + 512 + i) ()))
  in
  (match Pv_mmu.update mmu ~domain_id:1 ~table ~entries with
  | Ok cost -> Alcotest.(check bool) "batch cost" true (cost > 0.)
  | Error (e, _) -> Alcotest.fail (Pv_mmu.error_to_string e));
  Alcotest.(check int) "applied" 8 (Xc_mem.Page_table.entry_count table);
  Alcotest.(check int) "validated" 8 (Pv_mmu.validated_entries mmu)

let test_pv_mmu_rejects_hypervisor_frame () =
  let mmu = make_mmu () in
  let table = Xc_mem.Page_table.create () in
  match
    Pv_mmu.update mmu ~domain_id:1 ~table
      ~entries:[ (5, Xc_mem.Pte.make ~pfn:10 ()) ]
  with
  | Error (Pv_mmu.Maps_hypervisor_frame, 5) ->
      Alcotest.(check int) "nothing applied" 0 (Xc_mem.Page_table.entry_count table)
  | _ -> Alcotest.fail "expected Maps_hypervisor_frame"

let test_pv_mmu_rejects_foreign_frame () =
  let mmu = make_mmu () in
  let table = Xc_mem.Page_table.create () in
  match
    Pv_mmu.update mmu ~domain_id:1 ~table
      ~entries:[ (5, Xc_mem.Pte.make ~pfn:9000 ()) ]
  with
  | Error (Pv_mmu.Not_owned_frame, _) -> ()
  | _ -> Alcotest.fail "expected Not_owned_frame"

let test_pv_mmu_rejects_writable_page_table () =
  let mmu = make_mmu () in
  let table = Xc_mem.Page_table.create () in
  let pt_frame = 4096 + 42 in
  (match
     Pv_mmu.update mmu ~domain_id:1 ~table
       ~entries:[ (5, Xc_mem.Pte.make ~writable:true ~pfn:pt_frame ()) ]
   with
  | Error (Pv_mmu.Writable_page_table, _) -> ()
  | _ -> Alcotest.fail "expected Writable_page_table");
  (* Read-only mapping of the same frame is fine (how guests read their
     own page tables). *)
  match
    Pv_mmu.update mmu ~domain_id:1 ~table
      ~entries:[ (5, Xc_mem.Pte.make ~writable:false ~pfn:pt_frame ()) ]
  with
  | Ok _ -> ()
  | Error (e, _) -> Alcotest.fail (Pv_mmu.error_to_string e)

let test_pv_mmu_atomic_batch () =
  (* A bad entry anywhere aborts the whole batch. *)
  let mmu = make_mmu () in
  let table = Xc_mem.Page_table.create () in
  let entries =
    [ (1, Xc_mem.Pte.make ~pfn:5000 ()); (2, Xc_mem.Pte.make ~pfn:10 ()) ]
  in
  (match Pv_mmu.update mmu ~domain_id:1 ~table ~entries with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection");
  Alcotest.(check int) "atomic: nothing applied" 0 (Xc_mem.Page_table.entry_count table);
  Alcotest.(check int) "rejection counted" 1 (Pv_mmu.rejected_batches mmu)

let test_pv_mmu_batch_cost_scales () =
  Alcotest.(check bool) "bigger batches cost more" true
    (Pv_mmu.batch_cost_ns 100 > Pv_mmu.batch_cost_ns 1)

(* ---------------- Credit scheduler ---------------- *)

let test_credit_fairness () =
  let s = Credit_scheduler.create ~pcpus:1 in
  let v1 = Vcpu.create ~id:0 ~domain_id:1 in
  let v2 = Vcpu.create ~id:0 ~domain_id:2 in
  Credit_scheduler.attach s v1 ~weight:256;
  Credit_scheduler.attach s v2 ~weight:256;
  (* Simulate 200 slices of 1ms with periodic accounting. *)
  for i = 1 to 200 do
    if i mod 30 = 0 then Credit_scheduler.accounting_tick s;
    match Credit_scheduler.pick_next s ~pcpu:0 with
    | Some v -> Credit_scheduler.run_slice s v ~ns:1e6
    | None -> Alcotest.fail "nothing runnable"
  done;
  let ratio = Credit_scheduler.fairness_ratio s in
  Alcotest.(check bool) "equal weights share equally" true (ratio < 1.2)

let test_credit_under_before_over () =
  let s = Credit_scheduler.create ~pcpus:1 in
  let hungry = Vcpu.create ~id:0 ~domain_id:1 in
  let fresh = Vcpu.create ~id:0 ~domain_id:2 in
  Credit_scheduler.attach s hungry ~weight:256;
  Credit_scheduler.attach s fresh ~weight:256;
  Vcpu.set_credit hungry (-50);
  Vcpu.set_credit fresh 100;
  (match Credit_scheduler.pick_next s ~pcpu:0 with
  | Some v -> Alcotest.(check int) "UNDER first" 2 (Vcpu.domain_id v)
  | None -> Alcotest.fail "pick");
  (* Blocked vCPUs are never picked. *)
  Vcpu.set_state fresh Vcpu.Blocked;
  match Credit_scheduler.pick_next s ~pcpu:0 with
  | Some v -> Alcotest.(check int) "OVER when alone" 1 (Vcpu.domain_id v)
  | None -> Alcotest.fail "pick 2"

let test_credit_switch_cost_monotone () =
  Alcotest.(check bool) "longer runqueue dearer" true
    (Credit_scheduler.switch_cost_ns ~runnable_vcpus:400
    > Credit_scheduler.switch_cost_ns ~runnable_vcpus:4)

(* ---------------- Split driver ---------------- *)

let test_split_driver_ring () =
  let hypercalls = Hypercall.create () in
  let events = Event_channel.create Event_channel.Via_hypervisor in
  let d = Split_driver.create ~hypercalls ~events ~ring_slots:2 in
  (match Split_driver.submit d ~bytes_len:1448 with
  | Ok cost -> Alcotest.(check bool) "submit cost" true (cost > 0.)
  | Error e -> Alcotest.fail e);
  (match Split_driver.submit d ~bytes_len:1448 with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Split_driver.submit d ~bytes_len:1448 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ring full must fail");
  Alcotest.(check int) "in flight" 2 (Split_driver.in_flight d);
  ignore (Split_driver.complete d ~count:2);
  Alcotest.(check int) "drained" 0 (Split_driver.in_flight d);
  match Split_driver.submit d ~bytes_len:100 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("slot not freed: " ^ e)

let suites =
  [
    ( "hypervisor.hypercall",
      [
        Alcotest.test_case "surface" `Quick test_hypercall_surface;
        Alcotest.test_case "counting" `Quick test_hypercall_counting;
        Alcotest.test_case "costs" `Quick test_hypercall_costs;
      ] );
    ( "hypervisor.xkernel",
      [
        Alcotest.test_case "domain validation" `Quick test_domain_validation;
        Alcotest.test_case "memory gate" `Quick test_xkernel_memory_gate;
        Alcotest.test_case "destroy returns memory" `Quick
          test_xkernel_destroy_returns_memory;
        Alcotest.test_case "ABI differences" `Quick test_xkernel_abi_differences;
        Alcotest.test_case "TCB comparison" `Quick test_tcb_comparison;
        Alcotest.test_case "dom0 protected" `Quick test_dom0_protected;
      ] );
    ( "hypervisor.events",
      [
        Alcotest.test_case "bind/notify/deliver" `Quick test_event_channel_basic;
        Alcotest.test_case "unbound" `Quick test_event_channel_unbound;
        Alcotest.test_case "delivery costs (S4.2)" `Quick test_event_delivery_costs;
      ] );
    ( "hypervisor.pv_mmu",
      [
        Alcotest.test_case "valid batch" `Quick test_pv_mmu_valid_batch;
        Alcotest.test_case "rejects hypervisor frame" `Quick
          test_pv_mmu_rejects_hypervisor_frame;
        Alcotest.test_case "rejects foreign frame" `Quick
          test_pv_mmu_rejects_foreign_frame;
        Alcotest.test_case "rejects writable PT" `Quick
          test_pv_mmu_rejects_writable_page_table;
        Alcotest.test_case "atomic batch" `Quick test_pv_mmu_atomic_batch;
        Alcotest.test_case "batch cost scales" `Quick test_pv_mmu_batch_cost_scales;
      ] );
    ( "hypervisor.credit",
      [
        Alcotest.test_case "fairness" `Quick test_credit_fairness;
        Alcotest.test_case "under before over" `Quick test_credit_under_before_over;
        Alcotest.test_case "switch cost monotone" `Quick
          test_credit_switch_cost_monotone;
      ] );
    ( "hypervisor.split_driver",
      [ Alcotest.test_case "ring" `Quick test_split_driver_ring ] );
  ]
