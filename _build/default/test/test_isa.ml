(* Tests for the x86-64 subset: codec round trips, builder layout, and
   the interpreter's semantics. *)

open Xc_isa

let insn = Alcotest.testable Insn.pp Insn.equal

(* ---------------- Codec ---------------- *)

let sample_insns : Insn.t list =
  [
    Mov_eax_imm32 0;
    Mov_eax_imm32 0xe7;
    Mov_rax_imm32 1;
    Mov_rax_imm32 0x12345;
    Mov_rax_rsp8 8;
    Mov_rsp8_rax 16;
    Push_rax;
    Pop_rax;
    Push_rbp;
    Pop_rbp;
    Mov_rbp_rsp;
    Sub_rsp_imm8 8;
    Add_rsp_imm8 24;
    Syscall;
    Call_abs 0xffffffffff600008L;
    Call_rel32 1234;
    Call_rel32 (-1234);
    Jmp_rel8 (-9);
    Jmp_rel8 7;
    Jmp_rel32 100000;
    Jmp_rel32 (-5);
    Ret;
    Nop;
    Nop2;
    Hlt;
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      let buf = Codec.encode i in
      Alcotest.(check int) "encoded length" (Insn.length i) (Bytes.length buf);
      let decoded, len = Codec.decode buf 0 in
      Alcotest.check insn (Insn.to_string i) i decoded;
      Alcotest.(check int) "decoded length" (Insn.length i) len)
    sample_insns

let test_exact_bytes () =
  (* The encodings ABOM depends on, byte for byte (Figure 2). *)
  let hex buf = String.concat " " (List.init (Bytes.length buf) (fun i ->
      Printf.sprintf "%02x" (Bytes.get_uint8 buf i))) in
  Alcotest.(check string) "mov eax" "b8 00 00 00 00"
    (hex (Codec.encode (Mov_eax_imm32 0)));
  Alcotest.(check string) "mov rax" "48 c7 c0 0f 00 00 00"
    (hex (Codec.encode (Mov_rax_imm32 0xf)));
  Alcotest.(check string) "go mov" "48 8b 44 24 08"
    (hex (Codec.encode (Mov_rax_rsp8 8)));
  Alcotest.(check string) "syscall" "0f 05" (hex (Codec.encode Syscall));
  (* The 7-byte replacement of the paper: callq *0xffffffffff600008;
     its last two bytes are the 0x60 0xff that trap on a stray jump. *)
  Alcotest.(check string) "call abs" "ff 14 25 08 00 60 ff"
    (hex (Codec.encode (Call_abs 0xffffffffff600008L)));
  Alcotest.(check string) "jmp -9 (phase 2)" "eb f7"
    (hex (Codec.encode (Jmp_rel8 (-9))))

let test_invalid_decode () =
  let buf = Bytes.of_string "\x60" in
  let decoded, len = Codec.decode buf 0 in
  Alcotest.check insn "0x60 invalid" (Invalid 0x60) decoded;
  Alcotest.(check int) "length 1" 1 len

let test_truncated_decode () =
  (* A b8 with fewer than 4 immediate bytes must not read out of bounds. *)
  let buf = Bytes.of_string "\xb8\x01" in
  let decoded, _ = Codec.decode buf 0 in
  Alcotest.check insn "truncated mov" (Invalid 0xb8) decoded

let test_decode_all () =
  let prog = [ Insn.Mov_eax_imm32 3; Syscall; Ret ] in
  let buf = Bytes.create 8 in
  let off = List.fold_left (fun off i -> off + Codec.encode_into buf off i) 0 prog in
  Alcotest.(check int) "8 bytes" 8 off;
  let decoded = Codec.decode_all buf in
  Alcotest.(check int) "3 insns" 3 (List.length decoded);
  Alcotest.(check (list int)) "offsets" [ 0; 5; 7 ] (List.map fst decoded)

let codec_props =
  let insn_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun n -> Insn.Mov_eax_imm32 n) (int_range 0 400);
          map (fun n -> Insn.Mov_rax_imm32 n) (int_range 0 400);
          return (Insn.Mov_rax_rsp8 8);
          return Insn.Syscall;
          map (fun d -> Insn.Jmp_rel8 d) (int_range (-128) 127);
          map (fun d -> Insn.Call_rel32 d) (int_range (-100000) 100000);
          return Insn.Ret;
          return Insn.Nop;
          return Insn.Nop2;
          return Insn.Push_rax;
          map (fun a -> Insn.Call_abs (Int64.add 0xffffffffff600000L (Int64.of_int (8 * a))))
            (int_range 0 300);
        ])
  in
  [
    QCheck.Test.make ~name:"encode/decode roundtrip" ~count:1000
      (QCheck.make insn_gen) (fun i ->
        let buf = Codec.encode i in
        let decoded, len = Codec.decode buf 0 in
        Insn.equal i decoded && len = Insn.length i);
  ]

(* ---------------- Builder ---------------- *)

let test_builder_layout () =
  let prog =
    Builder.build
      [ (Builder.Glibc_small, 0); (Builder.Glibc_wide, 1); (Builder.Go_stack, 39) ]
  in
  Alcotest.(check int) "3 sites" 3 (List.length prog.sites);
  List.iter
    (fun (s : Builder.site) ->
      (* The recorded syscall offset must decode as a syscall. *)
      match Image.insn_at prog.image s.syscall_off with
      | Insn.Syscall, 2 -> ()
      | other, _ ->
          Alcotest.failf "expected syscall at %d, got %s" s.syscall_off
            (Insn.to_string other))
    prog.sites;
  (* 16-byte function alignment, as a linker would emit. *)
  List.iter
    (fun (s : Builder.site) ->
      Alcotest.(check int) "aligned wrapper" 0 (s.wrapper_off mod 16))
    prog.sites

let test_builder_symbols () =
  let prog = Builder.build [ (Builder.Glibc_small, 0) ] in
  Alcotest.(check bool) "main symbol" true
    (Option.is_some (Image.find_symbol prog.image "main"));
  Alcotest.(check bool) "wrapper symbol" true
    (Option.is_some (Image.find_symbol prog.image "__wrapper_0"))

let test_builder_styles_shapes () =
  let check_style style expected_before =
    let prog = Builder.build [ (style, 42) ] in
    let site = List.hd prog.sites in
    let before, _ = Image.insn_at prog.image site.wrapper_off in
    Alcotest.check insn (Builder.style_to_string style) expected_before before
  in
  check_style Builder.Glibc_small (Mov_eax_imm32 42);
  check_style Builder.Glibc_wide (Mov_rax_imm32 42);
  check_style Builder.Go_stack (Mov_rax_rsp8 8);
  check_style Builder.Cancellable (Mov_eax_imm32 42);
  check_style Builder.Exotic (Mov_eax_imm32 42)

(* ---------------- Image ---------------- *)

let test_image_protection () =
  let img = Image.create ~size:8192 () in
  Alcotest.(check int) "2 pages" 2 (Image.page_count img);
  (match Image.write img ~off:0 (Bytes.of_string "ab") ~wp_override:false with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "write to RO page must fail");
  (match Image.write img ~off:0 (Bytes.of_string "ab") ~wp_override:true with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "page dirty after override" true (Image.page_dirty img ~page:0);
  Alcotest.(check bool) "other page clean" false (Image.page_dirty img ~page:1)

let test_image_writable_page () =
  let img = Image.create ~size:4096 () in
  Image.set_page_writable img ~page:0 true;
  (match Image.write img ~off:10 (Bytes.of_string "xy") ~wp_override:false with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "writable page stays clean" false
    (Image.page_dirty img ~page:0)

let test_image_bounds () =
  let img = Image.create ~size:16 () in
  match Image.write img ~off:10 (Bytes.create 10) ~wp_override:true with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-bounds write must fail"

let test_image_addresses () =
  let img = Image.create ~base:0x400000L ~size:4096 () in
  Alcotest.(check int64) "addr of 16" 0x400010L (Image.addr_of_offset img 16);
  Alcotest.(check int) "offset of addr" 16 (Image.offset_of_addr img 0x400010L)

(* ---------------- Machine ---------------- *)

let test_machine_runs_program () =
  let prog =
    Builder.build
      [ (Builder.Glibc_small, 0); (Builder.Glibc_wide, 1); (Builder.Go_stack, 39) ]
  in
  let m = Machine.create prog.image ~entry:prog.entry in
  (match Machine.run m with
  | Machine.Halted -> ()
  | Fuel_exhausted -> Alcotest.fail "fuel exhausted"
  | Fault msg -> Alcotest.fail msg);
  Alcotest.(check (list int)) "syscall trace" [ 0; 1; 39 ] (Machine.syscall_numbers m);
  List.iter
    (fun (e : Machine.event) ->
      Alcotest.(check bool) "all via trap" true (e.kind = `Trap))
    (Machine.events m)

let test_machine_go_stack_argument () =
  (* The Go-style wrapper must read the syscall number the caller pushed. *)
  let prog = Builder.build [ (Builder.Go_stack, 231) ] in
  let m = Machine.create prog.image ~entry:prog.entry in
  ignore (Machine.run m);
  Alcotest.(check (list int)) "stack-passed sysno" [ 231 ] (Machine.syscall_numbers m)

let test_machine_reset_keeps_events () =
  let prog = Builder.build [ (Builder.Glibc_small, 7) ] in
  let m = Machine.create prog.image ~entry:prog.entry in
  ignore (Machine.run m);
  Machine.reset m ~entry:prog.entry;
  ignore (Machine.run m);
  Alcotest.(check (list int)) "two runs accumulate" [ 7; 7 ] (Machine.syscall_numbers m);
  Machine.clear_events m;
  Alcotest.(check (list int)) "cleared" [] (Machine.syscall_numbers m)

let test_machine_fault_unmapped_call () =
  let img = Image.create ~size:64 () in
  ignore (Image.emit img ~off:0 (Call_abs 0xdeadbeefL));
  let m = Machine.create img ~entry:0 in
  match Machine.run m with
  | Fault _ -> ()
  | _ -> Alcotest.fail "expected fault on unmapped call target"

let test_machine_fault_invalid_opcode () =
  let img = Image.create ~size:64 () in
  ignore (Image.emit img ~off:0 (Invalid 0x61));
  let m = Machine.create img ~entry:0 in
  match Machine.run m with
  | Fault _ -> ()
  | _ -> Alcotest.fail "expected invalid-opcode fault"

let test_machine_fuel () =
  let img = Image.create ~size:64 () in
  (* Infinite loop: jmp -2. *)
  ignore (Image.emit img ~off:0 (Jmp_rel8 (-2)));
  let m = Machine.create img ~entry:0 in
  match Machine.run ~fuel:100 m with
  | Fuel_exhausted -> Alcotest.(check int) "steps counted" 100 (Machine.steps m)
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_machine_stack_ops () =
  let img = Image.create ~size:64 () in
  let insns =
    [
      Insn.Mov_eax_imm32 77;
      Push_rax;
      Mov_eax_imm32 0;
      Pop_rax;
      Mov_rsp8_rax 8;
      Mov_eax_imm32 0;
      Mov_rax_rsp8 8;
      Hlt;
    ]
  in
  ignore (Image.emit_list img ~off:0 insns);
  let m = Machine.create img ~entry:0 in
  (match Machine.run m with
  | Halted -> ()
  | Fault msg -> Alcotest.fail msg
  | Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check int64) "push/pop/store/load preserve rax" 77L (Machine.rax m)

let suites =
  [
    ( "isa.codec",
      [
        Alcotest.test_case "roundtrip samples" `Quick test_roundtrip;
        Alcotest.test_case "exact bytes (Figure 2)" `Quick test_exact_bytes;
        Alcotest.test_case "invalid byte" `Quick test_invalid_decode;
        Alcotest.test_case "truncated" `Quick test_truncated_decode;
        Alcotest.test_case "decode_all" `Quick test_decode_all;
      ]
      @ List.map QCheck_alcotest.to_alcotest codec_props );
    ( "isa.builder",
      [
        Alcotest.test_case "layout" `Quick test_builder_layout;
        Alcotest.test_case "symbols" `Quick test_builder_symbols;
        Alcotest.test_case "wrapper shapes" `Quick test_builder_styles_shapes;
      ] );
    ( "isa.image",
      [
        Alcotest.test_case "write protection" `Quick test_image_protection;
        Alcotest.test_case "writable page" `Quick test_image_writable_page;
        Alcotest.test_case "bounds" `Quick test_image_bounds;
        Alcotest.test_case "addresses" `Quick test_image_addresses;
      ] );
    ( "isa.machine",
      [
        Alcotest.test_case "runs program" `Quick test_machine_runs_program;
        Alcotest.test_case "go stack argument" `Quick test_machine_go_stack_argument;
        Alcotest.test_case "reset keeps events" `Quick test_machine_reset_keeps_events;
        Alcotest.test_case "fault unmapped call" `Quick test_machine_fault_unmapped_call;
        Alcotest.test_case "fault invalid opcode" `Quick test_machine_fault_invalid_opcode;
        Alcotest.test_case "fuel" `Quick test_machine_fuel;
        Alcotest.test_case "stack ops" `Quick test_machine_stack_ops;
      ] );
  ]
