(* Tests for the final three Table 1 application models and the
   eleven-application sweep invariants. *)

open Xc_apps
module Config = Xc_platforms.Config
module Platform = Xc_platforms.Platform

let xc = Platform.create (Config.make Config.X_container)
let docker = Platform.create (Config.make Config.Docker)

let test_coverages_match_table1 () =
  Alcotest.(check (float 1e-9)) "fluentd" 0.994 Fluentd.abom_coverage;
  Alcotest.(check (float 1e-9)) "elasticsearch" 0.988 Elasticsearch.abom_coverage;
  Alcotest.(check (float 1e-9)) "influxdb" 1.0 Influxdb.abom_coverage;
  Alcotest.(check (float 1e-9)) "kernel build" 0.953 Kernel_build.abom_coverage

let test_fluentd_batching () =
  let s r = Recipe.service_ns docker r in
  Alcotest.(check bool) "bigger batches cost more" true
    (s (Fluentd.ingest_batch ~events:500) > s (Fluentd.ingest_batch ~events:50));
  (* But sub-linearly per event: batching amortises the syscalls. *)
  let per_event n = s (Fluentd.ingest_batch ~events:n) /. float_of_int n in
  Alcotest.(check bool) "amortisation" true (per_event 500 < per_event 10);
  Alcotest.(check bool) "flush is write-heavy" true
    (s Fluentd.flush_chunk > 50_000.)

let test_elasticsearch_mix () =
  let s r = Recipe.service_ns docker r in
  Alcotest.(check bool) "index dearer than search" true
    (s Elasticsearch.index_request > s Elasticsearch.search_request);
  (* JVM-heavy: user work dominates, so the XC gain is small. *)
  let rel = s Elasticsearch.mixed_request /. Recipe.service_ns xc Elasticsearch.mixed_request in
  Alcotest.(check bool)
    (Printf.sprintf "ES near par on XC (%.2f)" rel)
    true (rel > 0.85 && rel < 1.15)

let test_influxdb_write_path () =
  let s r = Recipe.service_ns docker r in
  Alcotest.(check bool) "write batch scales with points" true
    (s (Influxdb.write_batch ~points:1000) > s (Influxdb.write_batch ~points:100));
  Alcotest.(check bool) "query reads segments" true (s Influxdb.range_query > 150_000.)

let test_eleven_apps_have_recipes_everywhere () =
  let apps =
    [
      Nginx.static_request_wrk;
      Memcached.mixed_request;
      Redis.request;
      Etcd.mixed_request;
      Mongodb.ycsb_a;
      Postgres.transaction;
      Rabbitmq.publish_transient;
      Mysql.mixed_query ~offline_patched:false;
      Fluentd.steady_state;
      Elasticsearch.mixed_request;
      Influxdb.mixed_request;
    ]
  in
  Alcotest.(check int) "eleven recipes" 11 (List.length apps);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Recipe.name ^ " coverage sane") true
        (r.Recipe.abom_coverage > 0.4 && r.Recipe.abom_coverage <= 1.0);
      Alcotest.(check bool) (r.Recipe.name ^ " positive on XC") true
        (Recipe.service_ns xc r > 0.))
    apps

let test_no_app_collapses_on_xc () =
  (* The paper's claim "competitive to or even outperform native
     containers for other benchmarks": no modelled app may lose more
     than ~15% on X-Containers. *)
  List.iter
    (fun (name, r) ->
      let rel = Recipe.service_ns docker r /. Recipe.service_ns xc r in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %.2fx of Docker" name rel)
        true (rel > 0.85))
    [
      ("fluentd", Fluentd.steady_state);
      ("elasticsearch", Elasticsearch.mixed_request);
      ("influxdb", Influxdb.mixed_request);
      ("etcd", Etcd.mixed_request);
      ("mongodb", Mongodb.ycsb_a);
      ("postgres", Postgres.transaction);
    ]

let suites =
  [
    ( "apps.eleven",
      [
        Alcotest.test_case "coverages" `Quick test_coverages_match_table1;
        Alcotest.test_case "fluentd batching" `Quick test_fluentd_batching;
        Alcotest.test_case "elasticsearch mix" `Quick test_elasticsearch_mix;
        Alcotest.test_case "influxdb write path" `Quick test_influxdb_write_path;
        Alcotest.test_case "recipes everywhere" `Quick
          test_eleven_apps_have_recipes_everywhere;
        Alcotest.test_case "no app collapses on XC" `Quick
          test_no_app_collapses_on_xc;
      ] );
  ]
