(* Tests for the looped-binary support: counter/branch semantics, codec
   round trips of the new instructions, and ABOM behaviour inside a
   natively looping workload. *)

open Xc_isa

let insn = Alcotest.testable Insn.pp Insn.equal

let test_codec_roundtrip () =
  List.iter
    (fun i ->
      let buf = Codec.encode i in
      let decoded, len = Codec.decode buf 0 in
      Alcotest.check insn (Insn.to_string i) i decoded;
      Alcotest.(check int) "length" (Insn.length i) len)
    [ Insn.Mov_rcx_imm32 1000; Dec_rcx; Jnz_rel8 (-20); Jnz_rel8 5 ]

let test_loop_executes_n_times () =
  let prog = Builder.build ~loop_iterations:25 [ (Builder.Glibc_small, 39) ] in
  let m = Machine.create prog.image ~entry:prog.entry in
  (match Machine.run m with
  | Machine.Halted -> ()
  | Fault msg -> Alcotest.fail msg
  | Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check int) "25 syscalls" 25 (List.length (Machine.syscall_numbers m))

let test_loop_multi_wrapper_order () =
  let prog =
    Builder.build ~loop_iterations:3
      [ (Builder.Glibc_small, 1); (Builder.Glibc_wide, 2); (Builder.Go_stack, 3) ]
  in
  let m = Machine.create prog.image ~entry:prog.entry in
  ignore (Machine.run m);
  Alcotest.(check (list int)) "interleaved trace"
    [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ]
    (Machine.syscall_numbers m)

let test_loop_with_abom () =
  (* One execution of a looped binary: first iteration traps and patches,
     the remaining iterations run on the fast path — no machine resets. *)
  let prog =
    Builder.build ~loop_iterations:100
      [ (Builder.Glibc_small, 0); (Builder.Glibc_wide, 1) ]
  in
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  let config = Xc_abom.Patcher.machine_config patcher () in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  (match Machine.run ~fuel:100_000 m with
  | Machine.Halted -> ()
  | Fault msg -> Alcotest.fail msg
  | Fuel_exhausted -> Alcotest.fail "fuel");
  let events = Machine.events m in
  Alcotest.(check int) "200 syscalls" 200 (List.length events);
  let traps = List.filter (fun (e : Machine.event) -> e.kind = `Trap) events in
  Alcotest.(check int) "exactly one trap per site" 2 (List.length traps);
  Alcotest.(check int) "two sites patched" 2 (Xc_abom.Patcher.patched_sites patcher)

let test_loop_equivalence_with_unpatched () =
  let trace ~abom =
    let prog =
      Builder.build ~loop_iterations:10
        [ (Builder.Glibc_wide, 7); (Builder.Cancellable, 8) ]
    in
    let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
    let config = Xc_abom.Patcher.machine_config ~enabled:abom patcher () in
    let m = Machine.create ~config prog.image ~entry:prog.entry in
    ignore (Machine.run ~fuel:100_000 m);
    Machine.syscall_numbers m
  in
  Alcotest.(check (list int)) "same trace with and without ABOM"
    (trace ~abom:false) (trace ~abom:true)

let test_loop_validation () =
  Alcotest.check_raises "zero iterations"
    (Invalid_argument "Builder.build: loop_iterations must be positive") (fun () ->
      ignore (Builder.build ~loop_iterations:0 [ (Builder.Glibc_small, 0) ]));
  (* 25 wrappers x 5 bytes = 125 + dec/jnz > 127: out of rel8 reach. *)
  let too_many = List.init 25 (fun i -> (Builder.Glibc_small, i)) in
  Alcotest.check_raises "body too large"
    (Invalid_argument "Builder.build: loop body exceeds jnz rel8 reach") (fun () ->
      ignore (Builder.build ~loop_iterations:5 too_many))

let test_dec_jnz_semantics () =
  (* A bare countdown: mov rcx,3; loop: dec; jnz loop; hlt. *)
  let img = Image.create ~size:64 () in
  let off = Image.emit_list img ~off:0 [ Insn.Mov_rcx_imm32 3 ] in
  let loop_start = off in
  let off = Image.emit_list img ~off [ Insn.Dec_rcx ] in
  let disp = loop_start - (off + 2) in
  let off = Image.emit_list img ~off [ Insn.Jnz_rel8 disp ] in
  ignore (Image.emit img ~off Insn.Hlt);
  let m = Machine.create img ~entry:0 in
  (match Machine.run ~fuel:100 m with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "did not halt");
  (* 1 mov + 3 x (dec + jnz) + hlt = 8 steps. *)
  Alcotest.(check int) "step count" 8 (Machine.steps m)

let suites =
  [
    ( "isa.loops",
      [
        Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "loop executes n times" `Quick test_loop_executes_n_times;
        Alcotest.test_case "multi-wrapper order" `Quick test_loop_multi_wrapper_order;
        Alcotest.test_case "abom patch-once/run-many" `Quick test_loop_with_abom;
        Alcotest.test_case "trace equivalence" `Quick
          test_loop_equivalence_with_unpatched;
        Alcotest.test_case "validation" `Quick test_loop_validation;
        Alcotest.test_case "dec/jnz semantics" `Quick test_dec_jnz_semantics;
      ] );
  ]
