(* Tests for the later substrate additions: kernel-side signals,
   XenStore, the device-mapper storage model, and the kernel-build
   workload. *)

(* ---------------- Signals ---------------- *)

module Sig = Xc_os.Signal

let test_signal_dispositions () =
  let s = Sig.create () in
  (match Sig.set_disposition s Sig.sigterm (Sig.Handler 0x400100) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "handler installed" true
    (Sig.disposition s Sig.sigterm = Sig.Handler 0x400100);
  (match Sig.set_disposition s Sig.sigkill Sig.Ignore with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "SIGKILL disposition must be fixed");
  match Sig.block s Sig.sigkill with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "SIGKILL must not be blockable"

let test_signal_delivery_order () =
  let s = Sig.create () in
  ignore (Sig.set_disposition s Sig.sigusr1 (Sig.Handler 1));
  ignore (Sig.set_disposition s Sig.sigterm (Sig.Handler 2));
  Sig.raise_signal s Sig.sigterm;
  Sig.raise_signal s Sig.sigusr1;
  (* Lowest-numbered deliverable first: SIGUSR1 (10) before SIGTERM (15). *)
  (match Sig.next_delivery s with
  | Sig.Run_handler { signo; handler } ->
      Alcotest.(check int) "usr1 first" Sig.sigusr1 signo;
      Alcotest.(check int) "its handler" 1 handler
  | _ -> Alcotest.fail "expected handler run");
  (match Sig.next_delivery s with
  | Sig.Run_handler { signo; _ } -> Alcotest.(check int) "then term" Sig.sigterm signo
  | _ -> Alcotest.fail "expected handler run");
  Alcotest.(check bool) "drained" true (Sig.next_delivery s = Sig.Nothing)

let test_signal_blocking () =
  let s = Sig.create () in
  ignore (Sig.set_disposition s Sig.sigusr1 (Sig.Handler 1));
  ignore (Sig.block s Sig.sigusr1);
  Sig.raise_signal s Sig.sigusr1;
  Alcotest.(check bool) "blocked stays pending" true (Sig.next_delivery s = Sig.Nothing);
  Alcotest.(check (list int)) "pending" [ Sig.sigusr1 ] (Sig.pending s);
  Sig.unblock s Sig.sigusr1;
  match Sig.next_delivery s with
  | Sig.Run_handler { signo; _ } -> Alcotest.(check int) "delivered" Sig.sigusr1 signo
  | _ -> Alcotest.fail "expected delivery after unblock"

let test_signal_defaults () =
  let s = Sig.create () in
  Sig.raise_signal s Sig.sigterm;
  (match Sig.next_delivery s with
  | Sig.Kill signo -> Alcotest.(check int) "default terminates" Sig.sigterm signo
  | _ -> Alcotest.fail "expected kill");
  Sig.raise_signal s Sig.sigchld;
  match Sig.next_delivery s with
  | Sig.Ignored signo -> Alcotest.(check int) "sigchld ignored" Sig.sigchld signo
  | _ -> Alcotest.fail "expected ignore"

let test_signal_fork_exec_semantics () =
  let s = Sig.create () in
  ignore (Sig.set_disposition s Sig.sigusr1 (Sig.Handler 7));
  ignore (Sig.block s Sig.sigterm);
  Sig.raise_signal s Sig.sigusr1;
  let child = Sig.fork_inherit s in
  Alcotest.(check bool) "child inherits handler" true
    (Sig.disposition child Sig.sigusr1 = Sig.Handler 7);
  Alcotest.(check bool) "child inherits mask" true (Sig.is_blocked child Sig.sigterm);
  Alcotest.(check (list int)) "child pending cleared" [] (Sig.pending child);
  let after_exec = Sig.exec_reset s in
  Alcotest.(check bool) "exec resets handlers" true
    (Sig.disposition after_exec Sig.sigusr1 = Sig.Default);
  Alcotest.(check bool) "exec keeps mask" true (Sig.is_blocked after_exec Sig.sigterm);
  Alcotest.(check (list int)) "exec keeps pending" [ Sig.sigusr1 ]
    (Sig.pending after_exec)

(* ---------------- XenStore ---------------- *)

module Xs = Xc_hypervisor.Xenstore

let test_xenstore_tree () =
  let xs = Xs.create () in
  Xs.write xs ~path:"/local/domain/3/name" "web";
  Xs.write xs ~path:"/local/domain/3/memory" "131072";
  Alcotest.(check (option string)) "read back" (Some "web")
    (Xs.read xs ~path:"/local/domain/3/name");
  Alcotest.(check (option string)) "missing" None (Xs.read xs ~path:"/local/domain/9/name");
  Alcotest.(check (list string)) "directory" [ "memory"; "name" ]
    (Xs.directory xs ~path:"/local/domain/3");
  Xs.rm xs ~path:"/local/domain/3";
  Alcotest.(check (list string)) "removed" [] (Xs.directory xs ~path:"/local/domain/3")

let test_xenstore_watches () =
  let xs = Xs.create () in
  let fired = ref [] in
  Xs.watch xs ~path:"/local/domain/5" (fun p -> fired := p :: !fired);
  Xs.write xs ~path:"/local/domain/5/state" "4";
  Xs.write xs ~path:"/local/domain/6/state" "4" (* outside the watch *);
  Alcotest.(check (list string)) "watch fired once for the subtree"
    [ "/local/domain/5/state" ] !fired

let test_xenstore_handshake () =
  let xs = Xs.create () in
  let ops = Xs.device_handshake xs ~domid:3 ~device:"vif" in
  (* Both sides reach Connected. *)
  Alcotest.(check (option string)) "frontend connected" (Some "4")
    (Xs.read xs ~path:"/local/domain/3/device/vif/0/state");
  Alcotest.(check (option string)) "backend connected" (Some "4")
    (Xs.read xs ~path:"/local/domain/0/backend/vif/3/0/state");
  (* The serialised chatter the xl toolstack pays: dozens of round
     trips per device (Section 4.5's 3s total). *)
  Alcotest.(check bool) "many ops per device" true (ops >= 15);
  Alcotest.(check bool) "ops counted" true (Xs.op_count xs >= ops)

(* ---------------- Storage ---------------- *)

module St = Xcontainers.Storage

let test_storage_dedup_and_sharing () =
  let pool = St.create () in
  let base = St.add_layer pool ~content:"ubuntu-16.04 rootfs" in
  let nginx = St.add_layer pool ~content:"nginx binaries" in
  let php = St.add_layer pool ~content:"php binaries" in
  let base' = St.add_layer pool ~content:"ubuntu-16.04 rootfs" in
  Alcotest.(check string) "content addressed" base base';
  Alcotest.(check int) "three unique layers" 3 (St.layer_count pool);
  (match St.define_image pool ~name:"nginx:1.13" ~layers:[ base; nginx ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match St.define_image pool ~name:"php:7" ~layers:[ base; php ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "images share the base" 1
    (St.shared_with pool ~name_a:"nginx:1.13" ~name_b:"php:7");
  match St.define_image pool ~name:"bad" ~layers:[ "sha-deadbeef" ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing layer must fail"

let test_storage_cow_snapshot () =
  let pool = St.create () in
  let l0 = St.add_layer pool ~content:"base" in
  let l1 = St.add_layer pool ~content:"app" in
  ignore (St.define_image pool ~name:"img" ~layers:[ l0; l1 ]);
  let snap_a = match St.snapshot pool ~image:"img" with Ok s -> s | Error e -> Alcotest.fail e in
  let snap_b = match St.snapshot pool ~image:"img" with Ok s -> s | Error e -> Alcotest.fail e in
  Alcotest.(check (option string)) "reads image content" (Some "app")
    (St.read_block snap_a ~block:1);
  St.write_block snap_a ~block:1 "app-modified";
  Alcotest.(check (option string)) "sees own write" (Some "app-modified")
    (St.read_block snap_a ~block:1);
  Alcotest.(check (option string)) "other snapshot isolated" (Some "app")
    (St.read_block snap_b ~block:1);
  Alcotest.(check int) "one dirty block" 1 (St.dirty_blocks snap_a);
  Alcotest.(check int) "other clean" 0 (St.dirty_blocks snap_b);
  Alcotest.(check bool) "snapshot setup is metadata-cheap" true
    (St.snapshot_setup_cost_ns () < 1e6)

(* ---------------- Boot bottom-up estimate ---------------- *)

let test_boot_bottom_up_matches_top_down () =
  (* The XenStore-derived toolstack estimate must land within 5%% of the
     top-down 2.82s the Section 4.5 breakdown uses. *)
  let est = Xcontainers.Boot.xl_toolstack_estimate_ns () in
  let top_down = (Xcontainers.Boot.xcontainer ()).Xcontainers.Boot.toolstack_ns in
  Alcotest.(check bool)
    (Printf.sprintf "bottom-up %.0fms vs top-down %.0fms" (est /. 1e6)
       (top_down /. 1e6))
    true
    (Float.abs (est -. top_down) /. top_down < 0.05)

(* ---------------- Kernel build workload ---------------- *)

let test_kernel_build_shape () =
  let platform r = Xc_platforms.Platform.create (Xc_platforms.Config.make r) in
  let xc = platform Xc_platforms.Config.X_container in
  let rel = Xc_apps.Kernel_build.relative_to_docker xc in
  (* Process churn is XC's weak spot, but the compiler CPU dominates:
     modest slowdown, not a collapse. *)
  Alcotest.(check bool)
    (Printf.sprintf "XC slower but close (%.3f)" rel)
    true
    (rel > 0.90 && rel < 1.0);
  (* gVisor's fork/exec interception makes builds much worse. *)
  let gv = Xc_apps.Kernel_build.relative_to_docker (platform Xc_platforms.Config.Gvisor) in
  Alcotest.(check bool) "gvisor worse than XC" true (gv < rel);
  (* More parallelism shortens the build. *)
  Alcotest.(check bool) "jobs help" true
    (Xc_apps.Kernel_build.build_ns ~jobs:16 xc
    < Xc_apps.Kernel_build.build_ns ~jobs:4 xc)

let suites =
  [
    ( "os.signal",
      [
        Alcotest.test_case "dispositions" `Quick test_signal_dispositions;
        Alcotest.test_case "delivery order" `Quick test_signal_delivery_order;
        Alcotest.test_case "blocking" `Quick test_signal_blocking;
        Alcotest.test_case "defaults" `Quick test_signal_defaults;
        Alcotest.test_case "fork/exec semantics" `Quick
          test_signal_fork_exec_semantics;
      ] );
    ( "hypervisor.xenstore",
      [
        Alcotest.test_case "tree" `Quick test_xenstore_tree;
        Alcotest.test_case "watches" `Quick test_xenstore_watches;
        Alcotest.test_case "device handshake" `Quick test_xenstore_handshake;
      ] );
    ( "core.storage",
      [
        Alcotest.test_case "dedup and sharing" `Quick test_storage_dedup_and_sharing;
        Alcotest.test_case "CoW snapshot" `Quick test_storage_cow_snapshot;
      ] );
    ( "apps.kernel_build",
      [ Alcotest.test_case "shape" `Quick test_kernel_build_shape ] );
    ( "core.boot_bottom_up",
      [
        Alcotest.test_case "xenstore estimate matches" `Quick
          test_boot_bottom_up_matches_top_down;
      ] );
  ]
