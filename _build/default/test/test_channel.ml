(* Tests for the cross-kernel channel and a two-kernel PHP-to-MySQL
   exchange with live timing. *)

module Engine = Xc_sim.Engine
module Channel = Xc_net.Channel
module Socket = Xc_os.Socket

let xc_hops : Xc_net.Netpath.hop list = [ Native_stack; Split_driver ]

let make_channel engine =
  let mk () = { Channel.socket = Socket.create (); hops = xc_hops } in
  Channel.connect ~engine ~link:Xc_net.Link.ten_gbe ~a:(mk ()) ~b:(mk ())

let test_delivery_is_timed () =
  let engine = Engine.create () in
  let ch = make_channel engine in
  (match Channel.send ch ~from:`A (Bytes.of_string "SELECT 1") with
  | Ok cost -> Alcotest.(check bool) "sender cost positive" true (cost > 0.)
  | Error e -> Alcotest.fail e);
  (* Nothing arrives until the engine advances past the path delay. *)
  (match Channel.receive ch ~side:`B ~max_len:64 with
  | Ok b -> Alcotest.(check int) "not yet delivered" 0 (Bytes.length b)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "in flight" 1 (Channel.in_flight ch);
  Engine.run engine;
  (match Channel.receive ch ~side:`B ~max_len:64 with
  | Ok b -> Alcotest.(check string) "delivered" "SELECT 1" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "drained" 0 (Channel.in_flight ch);
  (* Delivery took at least the wire latency. *)
  Alcotest.(check bool) "time advanced past latency" true
    (Engine.now engine >= Xc_net.Link.latency_ns Xc_net.Link.ten_gbe)

let test_bidirectional_ordering () =
  let engine = Engine.create () in
  let ch = make_channel engine in
  ignore (Channel.send ch ~from:`A (Bytes.of_string "one"));
  ignore (Channel.send ch ~from:`A (Bytes.of_string "two"));
  ignore (Channel.send ch ~from:`B (Bytes.of_string "ack"));
  Engine.run engine;
  (match Channel.receive ch ~side:`B ~max_len:64 with
  | Ok b -> Alcotest.(check string) "FIFO per direction" "onetwo" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  (match Channel.receive ch ~side:`A ~max_len:64 with
  | Ok b -> Alcotest.(check string) "reverse direction" "ack" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "byte accounting" 9 (Channel.delivered_bytes ch)

let test_closed_socket_rejected () =
  let engine = Engine.create () in
  let ch = make_channel engine in
  (* Shut the A-side socket down: sends from A must fail. *)
  let a_sock = Socket.create () in
  let ch2 =
    Channel.connect ~engine ~link:Xc_net.Link.ten_gbe
      ~a:{ Channel.socket = a_sock; hops = xc_hops }
      ~b:{ Channel.socket = Socket.create (); hops = xc_hops }
  in
  Socket.close a_sock;
  (match Channel.send ch2 ~from:`A (Bytes.of_string "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "send on closed socket must fail");
  ignore ch

(* Integration: a PHP front-end queries a MySQL back-end across two
   X-Container kernels; the round trip's simulated time must match the
   priced path within rounding. *)
let test_php_mysql_roundtrip () =
  let engine = Engine.create () in
  let ch = make_channel engine in
  let query = Bytes.of_string "SELECT balance FROM accounts WHERE id=42" in
  let started = Engine.now engine in
  (match Channel.send ch ~from:`A query with Ok _ -> () | Error e -> Alcotest.fail e);
  Engine.run engine;
  (* MySQL side receives, "executes", replies. *)
  (match Channel.receive ch ~side:`B ~max_len:4096 with
  | Ok b -> Alcotest.(check int) "query intact" (Bytes.length query) (Bytes.length b)
  | Error e -> Alcotest.fail e);
  (match Channel.send ch ~from:`B (Bytes.of_string "balance=127.35") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Engine.run engine;
  (match Channel.receive ch ~side:`A ~max_len:4096 with
  | Ok b -> Alcotest.(check string) "result row" "balance=127.35" (Bytes.to_string b)
  | Error e -> Alcotest.fail e);
  let elapsed = Engine.now engine -. started in
  (* Two one-way trips over 10GbE with the split-driver stacks: each is
     latency (10us) + two stack traversals (~4us each side). *)
  Alcotest.(check bool)
    (Printf.sprintf "round trip in the tens of us (got %.1fus)" (elapsed /. 1e3))
    true
    (elapsed > 20_000. && elapsed < 80_000.)

let suites =
  [
    ( "net.channel",
      [
        Alcotest.test_case "timed delivery" `Quick test_delivery_is_timed;
        Alcotest.test_case "bidirectional ordering" `Quick test_bidirectional_ordering;
        Alcotest.test_case "closed socket" `Quick test_closed_socket_rejected;
        Alcotest.test_case "php<->mysql roundtrip" `Quick test_php_mysql_roundtrip;
      ] );
  ]
