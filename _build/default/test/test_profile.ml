(* Tests for the syscall profiler. *)

open Xc_isa
module Profile = Xc_abom.Profile

let run_profiled ?(iterations = 10) wrappers =
  let prog = Builder.build wrappers in
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  let config = Xc_abom.Patcher.machine_config patcher () in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  for _ = 1 to iterations do
    Machine.reset m ~entry:prog.entry;
    ignore (Machine.run m)
  done;
  Profile.of_machine m

let test_totals () =
  let p = run_profiled ~iterations:10 [ (Builder.Glibc_small, 0); (Builder.Glibc_small, 1) ] in
  Alcotest.(check int) "total" 20 p.Profile.total;
  (* Two warmup traps, the rest converted. *)
  Alcotest.(check int) "trapped" 2 p.Profile.trapped;
  Alcotest.(check int) "converted" 18 p.Profile.converted;
  Alcotest.(check bool) "reduction 90%" true
    (Float.abs (Profile.reduction p -. 0.9) < 1e-9)

let test_by_sysno_ordering () =
  (* Three calls of sysno 5 per run, one of sysno 6. *)
  let p =
    run_profiled ~iterations:4
      [
        (Builder.Glibc_small, 5);
        (Builder.Glibc_small, 5);
        (Builder.Glibc_small, 5);
        (Builder.Glibc_small, 6);
      ]
  in
  match p.Profile.by_sysno with
  | (top_sysno, top_n) :: _ ->
      Alcotest.(check int) "hottest sysno" 5 top_sysno;
      Alcotest.(check int) "count" 12 top_n
  | [] -> Alcotest.fail "empty profile"

let test_hot_unconverted () =
  let p =
    run_profiled ~iterations:20
      [ (Builder.Glibc_small, 0); (Builder.Cancellable, 1); (Builder.Exotic, 2) ]
  in
  let hot = Profile.hot_unconverted p in
  (* The cancellable and exotic sites keep trapping; the glibc site only
     trapped once (warmup) so it still appears but with 1 trap. *)
  Alcotest.(check bool) "at least the two unpatchable sites" true
    (List.length hot >= 2);
  (match hot with
  | first :: _ ->
      Alcotest.(check int) "hottest trap count" 20 first.Profile.trapped;
      Alcotest.(check bool) "is an unpatchable sysno" true
        (first.Profile.sysno = 1 || first.Profile.sysno = 2)
  | [] -> Alcotest.fail "no hot sites");
  Alcotest.(check bool) "top limit respected" true
    (List.length (Profile.hot_unconverted ~top:1 p) = 1)

let test_empty () =
  let p = Profile.of_events [] in
  Alcotest.(check int) "empty total" 0 p.Profile.total;
  Alcotest.(check (float 1e-12)) "empty reduction" 0. (Profile.reduction p);
  Alcotest.(check (list (pair int int))) "no sysnos" [] p.Profile.by_sysno

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pp_renders () =
  let p = run_profiled [ (Builder.Glibc_small, 0) ] in
  let s = Format.asprintf "%a" Profile.pp p in
  Alcotest.(check bool) "mentions read" true (contains s "read");
  Alcotest.(check bool) "mentions totals" true (contains s "syscalls: 10 total")

let suites =
  [
    ( "abom.profile",
      [
        Alcotest.test_case "totals" `Quick test_totals;
        Alcotest.test_case "by sysno" `Quick test_by_sysno_ordering;
        Alcotest.test_case "hot unconverted" `Quick test_hot_unconverted;
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "pp" `Quick test_pp_renders;
      ] );
  ]
