(* Tests for the CPU cost model and core accounting. *)

open Xc_cpu

let test_costs_validate () =
  match Costs.validate () with
  | Ok () -> ()
  | Error violations ->
      Alcotest.failf "cost model violations: %s" (String.concat "; " violations)

let test_cost_orderings () =
  (* The orderings every reproduced figure relies on. *)
  Alcotest.(check bool) "function call cheapest" true
    (Costs.function_call_ns < Costs.xc_fast_syscall_ns);
  Alcotest.(check bool) "xc fast < clear guest" true
    (Costs.xc_fast_syscall_ns < Costs.clear_guest_syscall_ns);
  Alcotest.(check bool) "trap < xen pv forward" true
    (Costs.syscall_trap_ns < Costs.xen_pv_syscall_ns);
  Alcotest.(check bool) "xen pv < gvisor ptrace" true
    (Costs.xen_pv_syscall_ns < Costs.gvisor_syscall_ns);
  Alcotest.(check bool) "xc event < xen event" true
    (Costs.xc_event_direct_ns < Costs.xen_event_channel_ns);
  Alcotest.(check bool) "xc iret < iret hypercall" true
    (Costs.xc_iret_ns < Costs.iret_hypercall_ns);
  Alcotest.(check bool) "nested exit > first-level exit" true
    (Costs.nested_vmexit_ns > Costs.vmexit_ns)

let test_headline_ratio () =
  let docker =
    Costs.syscall_trap_ns +. Costs.seccomp_audit_ns
    +. (2. *. Costs.kpti_transition_ns)
    +. Costs.kpti_tlb_side_ns +. Costs.cheap_syscall_work_ns
  in
  let xc = Costs.xc_fast_syscall_ns +. Costs.cheap_syscall_work_ns in
  let r = docker /. xc in
  Alcotest.(check bool) "headline ~27x" true (r > 20. && r < 32.)

let test_core_accounting () =
  let c = Core.create ~id:0 in
  Core.charge c ~label:"syscall" 100.;
  Core.charge c ~label:"syscall" 50.;
  Core.charge c 25.;
  Alcotest.(check (float 1e-9)) "busy" 175. (Core.busy_ns c);
  Alcotest.(check (float 1e-9)) "labelled count" 2. (Core.count c "syscall");
  Alcotest.(check (float 1e-9)) "utilization" 0.175 (Core.utilization c ~wall_ns:1000.);
  Core.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0. (Core.busy_ns c)

let test_smp () =
  let s = Smp.create ~cores:4 in
  Alcotest.(check int) "cores" 4 (Smp.cores s);
  Core.charge (Smp.core s 0) 100.;
  Core.charge (Smp.core s 1) 10.;
  Alcotest.(check (float 1e-9)) "total busy" 110. (Smp.total_busy_ns s);
  Alcotest.(check int) "least busy picks idle" 2 (Core.id (Smp.least_busy s));
  Alcotest.check_raises "zero cores" (Invalid_argument "Smp.create: need at least one core")
    (fun () -> ignore (Smp.create ~cores:0))

let test_mode_names () =
  Alcotest.(check string) "hypervisor" "hypervisor" (Mode.to_string Mode.Hypervisor);
  Alcotest.(check bool) "equal" true (Mode.equal Mode.Guest_user Mode.Guest_user);
  Alcotest.(check bool) "not equal" false (Mode.equal Mode.Guest_user Mode.Guest_kernel)

let suites =
  [
    ( "cpu.costs",
      [
        Alcotest.test_case "validate" `Quick test_costs_validate;
        Alcotest.test_case "orderings" `Quick test_cost_orderings;
        Alcotest.test_case "headline 27x" `Quick test_headline_ratio;
      ] );
    ( "cpu.core",
      [
        Alcotest.test_case "accounting" `Quick test_core_accounting;
        Alcotest.test_case "smp" `Quick test_smp;
        Alcotest.test_case "modes" `Quick test_mode_names;
      ] );
  ]
