(* Tests for the guest-kernel model: syscall table, VFS, pipes, CFS, and
   the kernel facade's process lifecycle and cost knobs. *)

open Xc_os

(* ---------------- Syscall numbers ---------------- *)

let test_syscall_numbers_authentic () =
  (* Match the real x86-64 table: these exact immediates end up inside
     the synthetic binaries ABOM patches. *)
  let expect = [ (Syscall_nr.Read, 0); (Write, 1); (Close, 3); (Dup, 32);
                 (Getpid, 39); (Fork, 57); (Execve, 59); (Umask, 95);
                 (Getuid, 102); (Epoll_wait, 232); (Accept4, 288) ]
  in
  List.iter
    (fun (s, n) -> Alcotest.(check int) (Syscall_nr.name s) n (Syscall_nr.number s))
    expect

let test_syscall_roundtrip () =
  List.iter
    (fun s ->
      match Syscall_nr.of_number (Syscall_nr.number s) with
      | Some s' -> Alcotest.(check string) "roundtrip" (Syscall_nr.name s) (Syscall_nr.name s')
      | None -> Alcotest.failf "no roundtrip for %s" (Syscall_nr.name s))
    Syscall_nr.all;
  Alcotest.(check bool) "unknown number" true (Syscall_nr.of_number 9999 = None)

let test_cheap_class () =
  (* Exactly the UnixBench System Call set. *)
  let cheap = List.filter Syscall_nr.is_cheap_nonblocking Syscall_nr.all in
  Alcotest.(check int) "five cheap syscalls" 5 (List.length cheap)

(* ---------------- VFS ---------------- *)

let test_vfs_files () =
  let fs = Vfs.create () in
  (match Vfs.mkdir_p fs "/var/www" with Ok () -> () | Error e -> Alcotest.fail (Vfs.error_to_string e));
  (match Vfs.write_file fs "/var/www/index.html" (Bytes.of_string "hello") with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vfs.error_to_string e));
  Alcotest.(check bool) "exists" true (Vfs.exists fs "/var/www/index.html");
  (match Vfs.read_file fs "/var/www/index.html" with
  | Ok b -> Alcotest.(check string) "contents" "hello" (Bytes.to_string b)
  | Error e -> Alcotest.fail (Vfs.error_to_string e));
  (match Vfs.file_size fs "/var/www/index.html" with
  | Ok n -> Alcotest.(check int) "size" 5 n
  | Error e -> Alcotest.fail (Vfs.error_to_string e));
  (match Vfs.readdir fs "/var/www" with
  | Ok entries -> Alcotest.(check (list string)) "readdir" [ "index.html" ] entries
  | Error e -> Alcotest.fail (Vfs.error_to_string e));
  (match Vfs.unlink fs "/var/www/index.html" with Ok () -> () | Error e -> Alcotest.fail (Vfs.error_to_string e));
  Alcotest.(check bool) "gone" false (Vfs.exists fs "/var/www/index.html")

let test_vfs_errors () =
  let fs = Vfs.create () in
  (match Vfs.read_file fs "/nope" with
  | Error Vfs.Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  ignore (Vfs.mkdir_p fs "/d");
  (match Vfs.read_file fs "/d" with
  | Error Vfs.Is_a_directory -> ()
  | _ -> Alcotest.fail "expected Is_a_directory");
  ignore (Vfs.write_file fs "/d/f" Bytes.empty);
  (match Vfs.mkdir fs "/d/f" with
  | Error Vfs.Already_exists -> ()
  | _ -> Alcotest.fail "expected Already_exists");
  match Vfs.mkdir_p fs "/d/f/sub" with
  | Error Vfs.Not_a_directory -> ()
  | _ -> Alcotest.fail "expected Not_a_directory"

let test_vfs_fd_io () =
  let fs = Vfs.create () in
  (match Vfs.openf fs "/f" `Create with
  | Error e -> Alcotest.fail (Vfs.error_to_string e)
  | Ok fd ->
      (match Vfs.write fs fd (Bytes.of_string "abcdef") with
      | Ok 6 -> ()
      | _ -> Alcotest.fail "write 6");
      (match Vfs.lseek fs fd 2 with Ok () -> () | Error _ -> Alcotest.fail "lseek");
      (match Vfs.read fs fd ~buf_len:3 with
      | Ok b -> Alcotest.(check string) "read window" "cde" (Bytes.to_string b)
      | Error _ -> Alcotest.fail "read");
      (match Vfs.close fs fd with Ok () -> () | Error _ -> Alcotest.fail "close");
      (match Vfs.read fs fd ~buf_len:1 with
      | Error Vfs.Bad_descriptor -> ()
      | _ -> Alcotest.fail "read after close must fail"))

let test_vfs_copy_cost () =
  Alcotest.(check bool) "per-byte cost grows" true
    (Vfs.copy_cost_ns ~bytes_len:4096 > Vfs.copy_cost_ns ~bytes_len:1024)

(* ---------------- Pipe ---------------- *)

let test_pipe_fifo () =
  let p = Pipe.create () in
  (match Pipe.write p (Bytes.of_string "abc") with
  | `Wrote 3 -> ()
  | _ -> Alcotest.fail "write 3");
  (match Pipe.write p (Bytes.of_string "de") with
  | `Wrote 2 -> ()
  | _ -> Alcotest.fail "write 2");
  (match Pipe.read p ~max_len:4 with
  | `Read b -> Alcotest.(check string) "fifo order" "abcd" (Bytes.to_string b)
  | `Would_block -> Alcotest.fail "unexpected block");
  (match Pipe.read p ~max_len:10 with
  | `Read b -> Alcotest.(check string) "rest" "e" (Bytes.to_string b)
  | `Would_block -> Alcotest.fail "unexpected block");
  match Pipe.read p ~max_len:1 with
  | `Would_block -> ()
  | `Read _ -> Alcotest.fail "empty pipe must block"

let test_pipe_capacity () =
  let p = Pipe.create ~capacity:4 () in
  (match Pipe.write p (Bytes.of_string "abcdef") with
  | `Wrote 4 -> ()
  | _ -> Alcotest.fail "partial write to capacity");
  (match Pipe.write p (Bytes.of_string "x") with
  | `Would_block -> ()
  | _ -> Alcotest.fail "full pipe must block");
  Alcotest.(check int) "buffered" 4 (Pipe.buffered p);
  Alcotest.(check int) "total transferred" 4 (Pipe.total_transferred p)

let test_pipe_default_capacity () =
  Alcotest.(check int) "linux default" 65536 Pipe.default_capacity

(* ---------------- CFS ---------------- *)

let make_proc pid =
  Process.create ~pid ~aspace:(Xc_mem.Address_space.create ~id:pid) ()

let test_cfs_pick_lowest_vruntime () =
  let s = Cfs.create () in
  let a = make_proc 1 and b = make_proc 2 in
  Cfs.add s a;
  Cfs.add s b;
  Process.set_vruntime a 100.;
  Process.set_vruntime b 50.;
  (match Cfs.pick_next s with
  | Some p -> Alcotest.(check int) "lowest vruntime" 2 (Process.pid p)
  | None -> Alcotest.fail "pick");
  Cfs.run_slice s b ~ns:100.;
  match Cfs.pick_next s with
  | Some p -> Alcotest.(check int) "switches after slice" 1 (Process.pid p)
  | None -> Alcotest.fail "pick 2"

let test_cfs_blocked_skipped () =
  let s = Cfs.create () in
  let a = make_proc 1 and b = make_proc 2 in
  Cfs.add s a;
  Cfs.add s b;
  Process.set_state a Process.Blocked;
  Alcotest.(check int) "one runnable" 1 (Cfs.runnable_count s);
  match Cfs.pick_next s with
  | Some p -> Alcotest.(check int) "runnable one picked" 2 (Process.pid p)
  | None -> Alcotest.fail "pick"

let test_cfs_wake_fairness () =
  let s = Cfs.create () in
  let a = make_proc 1 and b = make_proc 2 in
  Cfs.add s a;
  Cfs.run_slice s a ~ns:1000.;
  Process.set_state b Process.Blocked;
  Cfs.wake s b;
  (* Woken process starts at the queue minimum: no starvation, no unfair
     catch-up burst. *)
  Alcotest.(check (float 1e-9)) "vruntime at min" 1000. (Process.vruntime b)

(* ---------------- Kernel ---------------- *)

let test_kernel_spawn_policy () =
  let stock = Kernel.create () in
  let p = Kernel.spawn stock in
  Alcotest.(check bool) "stock: kernel not global" false
    (Xc_mem.Address_space.kernel_global (Process.aspace p));
  let xlibos = Kernel.create ~config:Kernel.xlibos_config () in
  let q = Kernel.spawn xlibos in
  Alcotest.(check bool) "xlibos: kernel global" true
    (Xc_mem.Address_space.kernel_global (Process.aspace q))

let test_kernel_fork_wait () =
  let k = Kernel.create () in
  let parent = Kernel.spawn k in
  let child, cost = Kernel.fork k parent in
  Alcotest.(check bool) "fork costs time" true (cost > 0.);
  Alcotest.(check int) "ppid" (Process.pid parent) (Process.ppid child);
  Alcotest.(check int) "two processes" 2 (Kernel.process_count k);
  (* Child's address space is a copy of the parent's. *)
  Alcotest.(check int) "page table copied"
    (Xc_mem.Page_table.entry_count (Xc_mem.Address_space.table (Process.aspace parent)))
    (Xc_mem.Page_table.entry_count (Xc_mem.Address_space.table (Process.aspace child)));
  ignore (Kernel.exit_process k child);
  let reaped, _ = Kernel.wait k parent in
  (match reaped with
  | Some z -> Alcotest.(check int) "reaped the child" (Process.pid child) (Process.pid z)
  | None -> Alcotest.fail "expected a zombie");
  Alcotest.(check int) "back to one" 1 (Kernel.process_count k);
  let nothing, _ = Kernel.wait k parent in
  Alcotest.(check bool) "no more zombies" true (nothing = None)

let test_kernel_fork_cost_pv () =
  let stock = Kernel.create () in
  let pv = Kernel.create ~config:Kernel.xlibos_config () in
  Alcotest.(check bool) "PV fork dearer (S5.4)" true
    (Kernel.fork_cost_ns pv ~pages:640 > Kernel.fork_cost_ns stock ~pages:640);
  Alcotest.(check bool) "PV exec dearer" true
    (Kernel.exec_cost_ns pv > Kernel.exec_cost_ns stock)

let test_kernel_context_switch_global_bit () =
  let stock = Kernel.create () in
  let xlibos = Kernel.create ~config:Kernel.xlibos_config () in
  Alcotest.(check bool) "global bit saves kernel refill" true
    (Kernel.context_switch_cost_ns xlibos < Kernel.context_switch_cost_ns stock)

let test_kernel_smp_tax () =
  let smp = Kernel.create () in
  let up =
    Kernel.create ~config:{ Kernel.default_config with smp = false } ()
  in
  Alcotest.(check bool) "SMP locking tax (S3.2)" true
    (Kernel.syscall_work_ns up (Kernel.File_read 1024)
    < Kernel.syscall_work_ns smp (Kernel.File_read 1024))

let test_kernel_work_scaling () =
  let k = Kernel.create () in
  Alcotest.(check bool) "bigger copies cost more" true
    (Kernel.syscall_work_ns k (Kernel.File_read 65536)
    > Kernel.syscall_work_ns k (Kernel.File_read 1024));
  Alcotest.(check bool) "cheap really cheap" true
    (Kernel.syscall_work_ns k (Kernel.Cheap Syscall_nr.Getpid) < 50.)

let suites =
  [
    ( "os.syscall_nr",
      [
        Alcotest.test_case "authentic numbers" `Quick test_syscall_numbers_authentic;
        Alcotest.test_case "roundtrip" `Quick test_syscall_roundtrip;
        Alcotest.test_case "cheap class" `Quick test_cheap_class;
      ] );
    ( "os.vfs",
      [
        Alcotest.test_case "files" `Quick test_vfs_files;
        Alcotest.test_case "errors" `Quick test_vfs_errors;
        Alcotest.test_case "fd io" `Quick test_vfs_fd_io;
        Alcotest.test_case "copy cost" `Quick test_vfs_copy_cost;
      ] );
    ( "os.pipe",
      [
        Alcotest.test_case "fifo" `Quick test_pipe_fifo;
        Alcotest.test_case "capacity" `Quick test_pipe_capacity;
        Alcotest.test_case "default capacity" `Quick test_pipe_default_capacity;
      ] );
    ( "os.cfs",
      [
        Alcotest.test_case "pick lowest" `Quick test_cfs_pick_lowest_vruntime;
        Alcotest.test_case "blocked skipped" `Quick test_cfs_blocked_skipped;
        Alcotest.test_case "wake fairness" `Quick test_cfs_wake_fairness;
      ] );
    ( "os.kernel",
      [
        Alcotest.test_case "spawn policy" `Quick test_kernel_spawn_policy;
        Alcotest.test_case "fork/wait lifecycle" `Quick test_kernel_fork_wait;
        Alcotest.test_case "PV fork cost" `Quick test_kernel_fork_cost_pv;
        Alcotest.test_case "global-bit switch cost" `Quick
          test_kernel_context_switch_global_bit;
        Alcotest.test_case "smp tax" `Quick test_kernel_smp_tax;
        Alcotest.test_case "work scaling" `Quick test_kernel_work_scaling;
      ] );
  ]
