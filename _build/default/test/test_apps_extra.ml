(* Tests for the extended application models (etcd, MongoDB, Postgres,
   RabbitMQ) and the cross-application sweep invariants. *)

open Xc_apps
module Config = Xc_platforms.Config
module Platform = Xc_platforms.Platform

let xc = Platform.create (Config.make Config.X_container)
let docker = Platform.create (Config.make Config.Docker)

let test_coverages () =
  Alcotest.(check (float 1e-9)) "etcd" 1.0 Etcd.abom_coverage;
  Alcotest.(check (float 1e-9)) "mongo" 1.0 Mongodb.abom_coverage;
  Alcotest.(check (float 1e-9)) "postgres" 0.998 Postgres.abom_coverage;
  Alcotest.(check (float 1e-9)) "rabbitmq" 0.986 Rabbitmq.abom_coverage

let test_write_paths_cost_more () =
  let s r = Recipe.service_ns docker r in
  Alcotest.(check bool) "etcd put > get" true (s (Etcd.put_request ()) > s Etcd.get_request);
  Alcotest.(check bool) "etcd replication costs" true
    (s (Etcd.put_request ~peers:2 ()) > s (Etcd.put_request ()));
  Alcotest.(check bool) "mongo update > read" true
    (s Mongodb.update_request > s Mongodb.read_request);
  Alcotest.(check bool) "rabbit persistent > transient" true
    (s Rabbitmq.publish_persistent > s Rabbitmq.publish_transient)

let test_postgres_connection_setup () =
  (* Process-per-connection: setup pays the platform's fork, so it is
     dearer on X-Containers (PV page tables) than on Docker. *)
  Alcotest.(check bool) "xc setup dearer" true
    (Postgres.connection_setup_ns xc > Postgres.connection_setup_ns docker);
  Alcotest.(check bool) "setup dominated by fork" true
    (Postgres.connection_setup_ns docker > Platform.fork_ns docker)

let test_sweep_ordering () =
  (* The Table 1 / Figure 3 story: XC's relative gain orders by syscall
     density.  memcached (syscall-dense) must gain more than Postgres
     (user-work-dense). *)
  let rel recipe =
    Recipe.service_ns docker recipe /. Recipe.service_ns xc recipe
  in
  Alcotest.(check bool) "memcached gains most" true
    (rel Memcached.mixed_request > rel Postgres.transaction);
  Alcotest.(check bool) "memcached gains more than mongo" true
    (rel Memcached.mixed_request > rel Mongodb.ycsb_a)

let test_all_apps_positive_everywhere () =
  let apps =
    [
      Etcd.mixed_request;
      Mongodb.ycsb_a;
      Postgres.transaction;
      Rabbitmq.publish_transient;
    ]
  in
  List.iter
    (fun runtime ->
      let p = Platform.create (Config.make runtime) in
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (r.Recipe.name ^ " on " ^ Config.runtime_name runtime)
            true
            (Recipe.service_ns p r > 0.))
        apps)
    [ Config.Docker; Config.Gvisor; Config.X_container; Config.Unikernel ]

let test_public_server_builder () =
  let config = Config.make Config.Gvisor in
  let p = Platform.create config in
  List.iter
    (fun app ->
      let s = Xcontainers.Figures.server_for_public config p app in
      (* gVisor cannot run processes concurrently: clamped to one unit. *)
      Alcotest.(check int) "gvisor single unit" 1 s.Xc_platforms.Closed_loop.units)
    [ `Nginx; `Memcached; `Etcd; `Postgres ]

let suites =
  [
    ( "apps.extra",
      [
        Alcotest.test_case "coverages" `Quick test_coverages;
        Alcotest.test_case "write paths cost more" `Quick test_write_paths_cost_more;
        Alcotest.test_case "postgres connection setup" `Quick
          test_postgres_connection_setup;
        Alcotest.test_case "sweep ordering" `Quick test_sweep_ordering;
        Alcotest.test_case "positive everywhere" `Quick
          test_all_apps_positive_everywhere;
        Alcotest.test_case "public server builder" `Quick test_public_server_builder;
      ] );
  ]
