(* Tests for the application models: recipes, UnixBench, the Table 1
   profiles (run on the real ABOM machinery), scalability, the LibOS
   comparison and the load-balancer study. *)

open Xc_apps
module Config = Xc_platforms.Config
module Platform = Xc_platforms.Platform

let platform ?(cloud = Config.Amazon_ec2) ?(patched = true) runtime =
  Platform.create (Config.make ~cloud ~meltdown_patched:patched runtime)

(* ---------------- Recipes ---------------- *)

let test_recipe_pricing () =
  let p = platform Config.Docker in
  let r =
    Recipe.make ~name:"t" ~user_ns:1000.
      ~ops:[ Xc_os.Kernel.Cheap Xc_os.Syscall_nr.Getpid ]
      ~irqs:0 ()
  in
  let cpu = Recipe.cpu_only_ns p r in
  Alcotest.(check bool) "more than user time" true (cpu > 1000.);
  Alcotest.(check bool) "service includes net" true (Recipe.service_ns p r > cpu);
  Alcotest.(check int) "syscall count" 1 (Recipe.syscall_count r)

let test_recipe_hops_charged () =
  let p = platform Config.Docker in
  let base = Recipe.make ~name:"a" ~user_ns:0. ~ops:[] ~irqs:0 () in
  let hopped = Recipe.make ~name:"b" ~user_ns:0. ~ops:[] ~irqs:0 ~process_hops:2 () in
  Alcotest.(check bool) "hops cost" true
    (Recipe.cpu_only_ns p hopped > Recipe.cpu_only_ns p base)

let test_recipe_jitter_positive () =
  let p = platform Config.Docker in
  let rng = Xc_sim.Prng.create 1 in
  for _ = 1 to 100 do
    let v = Recipe.with_jitter Nginx.static_request_wrk p ~cv:0.3 rng in
    Alcotest.(check bool) "positive" true (v > 0.)
  done

let test_app_coverages_match_table1 () =
  Alcotest.(check (float 1e-9)) "nginx" 0.923 Nginx.abom_coverage;
  Alcotest.(check (float 1e-9)) "memcached" 1.0 Memcached.abom_coverage;
  Alcotest.(check (float 1e-9)) "redis" 1.0 Redis.abom_coverage;
  Alcotest.(check (float 1e-9)) "mysql auto" 0.446 Mysql.abom_coverage_auto;
  Alcotest.(check (float 1e-9)) "mysql manual" 0.922 Mysql.abom_coverage_manual

let test_mysql_offline_patch_helps () =
  let p = platform Config.X_container in
  let auto = Recipe.service_ns p (Mysql.mixed_query ~offline_patched:false) in
  let manual = Recipe.service_ns p (Mysql.mixed_query ~offline_patched:true) in
  Alcotest.(check bool) "offline patch speeds MySQL on XC" true (manual < auto);
  (* On Docker the patch state changes nothing. *)
  let d = platform Config.Docker in
  Alcotest.(check (float 1e-9)) "docker indifferent"
    (Recipe.service_ns d (Mysql.mixed_query ~offline_patched:false))
    (Recipe.service_ns d (Mysql.mixed_query ~offline_patched:true))

(* ---------------- UnixBench ---------------- *)

let test_unixbench_syscall_ordering () =
  let rate r = Unixbench.rate (platform r) Unixbench.Syscall_rate in
  Alcotest.(check bool) "xc > clear" true
    (rate Config.X_container > rate Config.Clear_container);
  Alcotest.(check bool) "clear > docker" true
    (rate Config.Clear_container > rate Config.Docker);
  Alcotest.(check bool) "docker > xen-container" true
    (rate Config.Docker > rate Config.Xen_container);
  Alcotest.(check bool) "xen-container > gvisor" true
    (rate Config.Xen_container > rate Config.Gvisor)

let test_unixbench_xc_weaknesses () =
  (* Section 5.4: XC slower than Docker on process creation and context
     switching, faster on file copy and pipes. *)
  let xc = platform Config.X_container and docker = platform Config.Docker in
  let r p t = Unixbench.rate p t in
  Alcotest.(check bool) "proc creation slower" true
    (r xc Unixbench.Process_creation < r docker Unixbench.Process_creation);
  Alcotest.(check bool) "ctx switching slower" true
    (r xc Unixbench.Context_switching < r docker Unixbench.Context_switching);
  Alcotest.(check bool) "file copy faster" true
    (r xc Unixbench.File_copy > r docker Unixbench.File_copy);
  Alcotest.(check bool) "pipe faster" true
    (r xc Unixbench.Pipe_throughput > r docker Unixbench.Pipe_throughput)

let test_unixbench_concurrent_scales () =
  let p = platform Config.X_container in
  let single = Unixbench.rate p Unixbench.Syscall_rate in
  let four = Unixbench.concurrent_rate p ~copies:4 Unixbench.Syscall_rate in
  Alcotest.(check bool) "between 3x and 4x" true
    (four > 3. *. single && four < 4. *. single);
  Alcotest.(check (float 1e-9)) "zero copies" 0.
    (Unixbench.concurrent_rate p ~copies:0 Unixbench.Syscall_rate)

let test_unixbench_names () =
  Alcotest.(check int) "five micro panels" 5 (List.length Unixbench.all_micro);
  Alcotest.(check string) "syscall name" "System Call"
    (Unixbench.test_name Unixbench.Syscall_rate)

(* ---------------- Table 1 profiles ---------------- *)

let test_profiles_complete () =
  Alcotest.(check int) "twelve applications" 12 (List.length Profiles.all);
  Alcotest.(check bool) "find nginx" true (Profiles.find "nginx" <> None);
  Alcotest.(check bool) "find case-insensitive" true (Profiles.find "MYSQL" <> None);
  Alcotest.(check bool) "unknown" true (Profiles.find "oracle" = None)

let test_profiles_match_paper () =
  (* Run the real ABOM machinery over each synthetic binary and check
     the measured reduction lands within 1.5 points of Table 1. *)
  List.iter
    (fun profile ->
      let m = Profiles.measure ~invocations:30_000 profile in
      let delta = Float.abs (m.auto_reduction -. profile.paper_reduction) in
      if delta > 0.015 then
        Alcotest.failf "%s: measured %.3f, paper %.3f" profile.name
          m.auto_reduction profile.paper_reduction)
    Profiles.all

let test_mysql_manual_patch () =
  match Profiles.find "mysql" with
  | None -> Alcotest.fail "mysql profile missing"
  | Some profile ->
      let m = Profiles.measure ~invocations:30_000 profile in
      Alcotest.(check bool) "auto ~44.6%" true
        (Float.abs (m.auto_reduction -. 0.446) < 0.02);
      Alcotest.(check bool) "manual ~92.2%" true
        (Float.abs (m.manual_reduction -. 0.922) < 0.02);
      Alcotest.(check bool) "manual strictly better" true
        (m.manual_reduction > m.auto_reduction +. 0.3)

let test_profiles_deterministic () =
  let profile = List.hd Profiles.all in
  let a = Profiles.measure ~invocations:5_000 ~seed:3 profile in
  let b = Profiles.measure ~invocations:5_000 ~seed:3 profile in
  Alcotest.(check (float 1e-12)) "same seed same measurement" a.auto_reduction
    b.auto_reduction

(* ---------------- Scalability (Figure 8) ---------------- *)

let test_scalability_boot_limits () =
  let booted runtime n = (Scalability.run runtime ~containers:n).booted in
  Alcotest.(check bool) "xc boots 400" true (booted Config.X_container 400);
  Alcotest.(check bool) "docker boots 400" true (booted Config.Docker 400);
  Alcotest.(check bool) "pv fails at 300" false (booted Config.Xen_pv 300);
  Alcotest.(check bool) "pv boots 250" true (booted Config.Xen_pv 250);
  Alcotest.(check bool) "hvm fails at 250" false (booted Config.Xen_hvm 250);
  Alcotest.(check bool) "hvm boots 200" true (booted Config.Xen_hvm 200)

let test_scalability_crossover () =
  let t runtime n = (Scalability.run runtime ~containers:n).throughput_rps in
  (* Docker wins in the mid range, X-Containers at 400 (Section 5.6). *)
  Alcotest.(check bool) "docker ahead at 200" true
    (t Config.Docker 200 > t Config.X_container 200);
  let ratio = t Config.X_container 400 /. t Config.Docker 400 in
  Alcotest.(check bool) "xc ~18% ahead at 400" true (ratio > 1.10 && ratio < 1.30)

let test_scalability_service_grows () =
  let s n = (Scalability.run Config.Docker ~containers:n).service_ns in
  Alcotest.(check bool) "docker service grows with N" true (s 400 > s 50)

(* ---------------- Figure 6 ---------------- *)

let test_fig6_nginx_single () =
  let g = Serverless.nginx_one_worker Serverless.G in
  let u = Serverless.nginx_one_worker Serverless.U in
  let x = Serverless.nginx_one_worker Serverless.X in
  Alcotest.(check bool) "x comparable to unikernel" true
    (x /. u > 0.9 && x /. u < 1.25);
  Alcotest.(check bool) "x ~2x graphene" true (x /. g > 1.7 && x /. g < 2.4)

let test_fig6_nginx_multi () =
  Alcotest.(check bool) "unikernel cannot" true
    (Serverless.nginx_four_workers Serverless.U = None);
  match
    ( Serverless.nginx_four_workers Serverless.X,
      Serverless.nginx_four_workers Serverless.G )
  with
  | Some x, Some g ->
      Alcotest.(check bool) "x >1.5x graphene" true (x /. g > 1.4 && x /. g < 2.2)
  | _ -> Alcotest.fail "expected results for X and G"

let test_fig6_php_mysql () =
  let get c topo =
    match Serverless.php_mysql c topo with
    | Some v -> v
    | None -> Alcotest.fail "missing"
  in
  Alcotest.(check bool) "graphene unsupported" true
    (Serverless.php_mysql Serverless.G Serverless.Shared = None);
  Alcotest.(check bool) "unikernel cannot merge" true
    (Serverless.php_mysql Serverless.U Serverless.Dedicated_merged = None);
  let x_ded = get Serverless.X Serverless.Dedicated in
  let u_ded = get Serverless.U Serverless.Dedicated in
  let x_merged = get Serverless.X Serverless.Dedicated_merged in
  Alcotest.(check bool) "x ~1.4x unikernel" true
    (x_ded /. u_ded > 1.25 && x_ded /. u_ded < 1.6);
  Alcotest.(check bool) "merged ~3x unikernel dedicated" true
    (x_merged /. u_ded > 2.5 && x_merged /. u_ded < 3.6);
  Alcotest.(check bool) "shared ~ dedicated" true
    (let x_sh = get Serverless.X Serverless.Shared in
     Float.abs ((x_sh /. x_ded) -. 1.0) < 0.05)

(* ---------------- Figure 9 ---------------- *)

let test_lb_shapes () =
  let result setup = Lb_experiment.run setup in
  let docker = result Lb_experiment.Docker_haproxy in
  let xc = result Lb_experiment.Xcontainer_haproxy in
  let nat = result Lb_experiment.Xcontainer_ipvs_nat in
  let dr = result Lb_experiment.Xcontainer_ipvs_dr in
  Alcotest.(check bool) "xc haproxy ~2x docker" true
    (let r = xc.throughput_rps /. docker.throughput_rps in
     r > 1.7 && r < 2.6);
  Alcotest.(check bool) "nat ~+12%" true
    (let r = nat.throughput_rps /. xc.throughput_rps in
     r > 1.05 && r < 1.35);
  Alcotest.(check bool) "dr ~2.5x nat" true
    (let r = dr.throughput_rps /. nat.throughput_rps in
     r > 2.0 && r < 3.6);
  Alcotest.(check bool) "dr bottleneck moves to backends" true
    (dr.bottleneck = `Backends);
  Alcotest.(check bool) "others balancer-bound" true
    (docker.bottleneck = `Balancer && nat.bottleneck = `Balancer)

let test_lb_requires_modules () =
  (* IPVS setups are exactly the ones Docker cannot express (S5.7). *)
  List.iter
    (fun setup ->
      let mode =
        match setup with
        | Lb_experiment.Docker_haproxy | Lb_experiment.Xcontainer_haproxy ->
            Xc_net.Load_balancer.Haproxy
        | Lb_experiment.Xcontainer_ipvs_nat -> Xc_net.Load_balancer.Ipvs_nat
        | Lb_experiment.Xcontainer_ipvs_dr -> Xc_net.Load_balancer.Ipvs_direct_routing
      in
      ignore (Xc_net.Load_balancer.requires_kernel_modules mode))
    Lb_experiment.all;
  Alcotest.(check int) "four setups" 4 (List.length Lb_experiment.all)

let suites =
  [
    ( "apps.recipe",
      [
        Alcotest.test_case "pricing" `Quick test_recipe_pricing;
        Alcotest.test_case "hops charged" `Quick test_recipe_hops_charged;
        Alcotest.test_case "jitter positive" `Quick test_recipe_jitter_positive;
        Alcotest.test_case "coverages match Table 1" `Quick
          test_app_coverages_match_table1;
        Alcotest.test_case "mysql offline patch" `Quick test_mysql_offline_patch_helps;
      ] );
    ( "apps.unixbench",
      [
        Alcotest.test_case "syscall ordering" `Quick test_unixbench_syscall_ordering;
        Alcotest.test_case "xc weaknesses (S5.4)" `Quick test_unixbench_xc_weaknesses;
        Alcotest.test_case "concurrent scaling" `Quick test_unixbench_concurrent_scales;
        Alcotest.test_case "names" `Quick test_unixbench_names;
      ] );
    ( "apps.profiles",
      [
        Alcotest.test_case "twelve rows" `Quick test_profiles_complete;
        Alcotest.test_case "match Table 1" `Slow test_profiles_match_paper;
        Alcotest.test_case "mysql manual patch" `Quick test_mysql_manual_patch;
        Alcotest.test_case "deterministic" `Quick test_profiles_deterministic;
      ] );
    ( "apps.scalability",
      [
        Alcotest.test_case "boot limits (S5.6)" `Quick test_scalability_boot_limits;
        Alcotest.test_case "crossover" `Quick test_scalability_crossover;
        Alcotest.test_case "service grows" `Quick test_scalability_service_grows;
      ] );
    ( "apps.serverless",
      [
        Alcotest.test_case "fig6a nginx single" `Quick test_fig6_nginx_single;
        Alcotest.test_case "fig6b nginx multi" `Quick test_fig6_nginx_multi;
        Alcotest.test_case "fig6c php+mysql" `Quick test_fig6_php_mysql;
      ] );
    ( "apps.lb",
      [
        Alcotest.test_case "fig9 shapes" `Quick test_lb_shapes;
        Alcotest.test_case "module requirements" `Quick test_lb_requires_modules;
      ] );
  ]
