(* Tests for the event-driven scheduler simulation and its agreement
   with the analytic Figure 8 model. *)

module CS = Xc_platforms.Cluster_sim

let run mode n = CS.run (CS.default_config mode ~containers:n)

let test_deterministic () =
  let a = run CS.Flat 8 and b = run CS.Flat 8 in
  Alcotest.(check (float 1e-9)) "same throughput" a.throughput_rps b.throughput_rps;
  Alcotest.(check int) "same switches" a.container_switches b.container_switches

let test_demand_bound_region () =
  (* Small N: both schedulers deliver the same (demand-limited)
     throughput — the flat curve and the hierarchical curve start
     together, as in Figure 8. *)
  let flat = run CS.Flat 16 and hier = run CS.Hierarchical 16 in
  Alcotest.(check bool) "equal when demand-bound" true
    (Float.abs (flat.throughput_rps -. hier.throughput_rps)
     /. flat.throughput_rps
    < 0.03);
  (* Demand for 16 containers x 5 conns over a ~25.5ms cycle. *)
  Alcotest.(check bool) "plausible absolute" true
    (flat.throughput_rps > 2_000. && flat.throughput_rps < 4_000.)

let test_hierarchy_batches_switches () =
  (* The emergent mechanism: the two-level scheduler performs several
     times fewer cross-container switches because a core drains a
     container's processes before moving on. *)
  List.iter
    (fun n ->
      let flat = run CS.Flat n and hier = run CS.Hierarchical n in
      Alcotest.(check bool)
        (Printf.sprintf "fewer container switches at N=%d" n)
        true
        (hier.container_switches * 2 < flat.container_switches))
    [ 16; 64 ]

let test_crossover_at_scale () =
  let flat = run CS.Flat 400 and hier = run CS.Hierarchical 400 in
  let gain = hier.throughput_rps /. flat.throughput_rps in
  Alcotest.(check bool)
    (Printf.sprintf "hierarchical wins at 400 (got %.2fx)" gain)
    true
    (gain > 1.05 && gain < 1.35);
  Alcotest.(check bool) "flat burns way more switch time" true
    (flat.switch_overhead_ns > 3. *. hier.switch_overhead_ns);
  Alcotest.(check bool) "both near saturation" true
    (flat.busy_fraction > 0.85 && hier.busy_fraction > 0.85)

let test_agrees_with_analytic_model () =
  (* Cross-validation: the simulated hierarchical throughput at N=400
     should land within 25% of the analytic Figure 8 X-Container point
     (they share cost constants but differ in method). *)
  let sim = (run CS.Hierarchical 400).throughput_rps in
  let analytic =
    (Xc_apps.Scalability.run Xc_platforms.Config.X_container ~containers:400)
      .throughput_rps
  in
  let ratio = sim /. analytic in
  Alcotest.(check bool)
    (Printf.sprintf "sim within 25%% of analytic (%.2f)" ratio)
    true
    (ratio > 0.75 && ratio < 1.25)

let test_latency_grows_with_load () =
  let low = run CS.Hierarchical 16 and high = run CS.Hierarchical 400 in
  Alcotest.(check bool) "p99 grows when saturated" true
    (high.p99_latency_ns > low.p99_latency_ns);
  Alcotest.(check bool) "latency at least the rtt" true
    (low.mean_latency_ns >= 25e6)

let test_stage_validation () =
  let config = { (CS.default_config CS.Flat ~containers:1) with stage_cpu_ns = [||] } in
  Alcotest.check_raises "no stages" (Invalid_argument "Cluster_sim.run: stages")
    (fun () -> ignore (CS.run config))

let suites =
  [
    ( "cluster_sim",
      [
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "demand-bound region" `Slow test_demand_bound_region;
        Alcotest.test_case "hierarchy batches switches" `Slow
          test_hierarchy_batches_switches;
        Alcotest.test_case "crossover at 400" `Slow test_crossover_at_scale;
        Alcotest.test_case "agrees with analytic fig8" `Slow
          test_agrees_with_analytic_model;
        Alcotest.test_case "latency grows" `Slow test_latency_grows_with_load;
        Alcotest.test_case "validation" `Quick test_stage_validation;
      ] );
  ]
