(* Tests for the memory substrate: page tables, address spaces, the TLB's
   global-bit semantics (the Section 4.3 mechanism) and KPTI. *)

open Xc_mem

let pte = Alcotest.testable Pte.pp Pte.equal

(* ---------------- Page table ---------------- *)

let test_pt_map_lookup () =
  let t = Page_table.create () in
  Page_table.map t ~vpn:10 (Pte.make ~pfn:100 ());
  Alcotest.(check (option pte)) "lookup" (Some (Pte.make ~pfn:100 ()))
    (Page_table.lookup t ~vpn:10);
  Alcotest.(check (option pte)) "missing" None (Page_table.lookup t ~vpn:11);
  Alcotest.(check int) "count" 1 (Page_table.entry_count t)

let test_pt_global_count () =
  let t = Page_table.create () in
  Page_table.map t ~vpn:1 (Pte.make ~global:true ~pfn:1 ());
  Page_table.map t ~vpn:2 (Pte.make ~global:false ~pfn:2 ());
  Alcotest.(check int) "one global" 1 (Page_table.global_count t);
  (* Remap the global page as non-global: count drops. *)
  Page_table.map t ~vpn:1 (Pte.make ~global:false ~pfn:1 ());
  Alcotest.(check int) "remapped" 0 (Page_table.global_count t);
  Page_table.map t ~vpn:2 (Pte.make ~global:true ~pfn:2 ());
  Page_table.unmap t ~vpn:2;
  Alcotest.(check int) "unmap global" 0 (Page_table.global_count t)

let test_pt_map_range_and_copy () =
  let t = Page_table.create () in
  Page_table.map_range t ~vpn:100 ~pages:16 ~first_pfn:500 ~flags:(fun ~pfn ->
      Pte.make ~pfn ());
  Alcotest.(check int) "16 entries" 16 (Page_table.entry_count t);
  (match Page_table.lookup t ~vpn:107 with
  | Some p -> Alcotest.(check int) "consecutive pfn" 507 p.Pte.pfn
  | None -> Alcotest.fail "vpn 107 missing");
  let c = Page_table.copy t in
  Page_table.unmap t ~vpn:100;
  Alcotest.(check int) "copy unaffected" 16 (Page_table.entry_count c)

let test_pt_addr_conversion () =
  Alcotest.(check int) "vpn of addr" 2 (Page_table.vpn_of_addr 8192L);
  Alcotest.(check int64) "addr of vpn" 8192L (Page_table.addr_of_vpn 2)

(* ---------------- Address space ---------------- *)

let test_aspace_regions () =
  Alcotest.(check bool) "low vpn is user" true
    (Address_space.region_of_vpn 100 = Address_space.User);
  Alcotest.(check bool) "high vpn is kernel" true
    (Address_space.region_of_vpn Address_space.kernel_base_vpn = Address_space.Kernel)

let test_aspace_map_validation () =
  let a = Address_space.create ~id:1 in
  Alcotest.check_raises "user map in kernel half"
    (Invalid_argument "map_user: above user half") (fun () ->
      Address_space.map_user a ~vpn:Address_space.kernel_base_vpn ~pages:1
        ~first_pfn:0);
  Alcotest.check_raises "kernel map in user half"
    (Invalid_argument "map_kernel: below kernel half") (fun () ->
      Address_space.map_kernel a ~global:true ~vpn:0 ~pages:1 ~first_pfn:0)

let test_aspace_global_policy () =
  (* Stock PV guest: no global bit; X-LibOS: global bit set. *)
  let pv = Address_space.create ~id:1 in
  Address_space.map_kernel pv ~global:false ~vpn:Address_space.kernel_base_vpn
    ~pages:8 ~first_pfn:0;
  Address_space.map_user pv ~vpn:10 ~pages:4 ~first_pfn:100;
  Alcotest.(check bool) "pv kernel not global" false (Address_space.kernel_global pv);
  let xc = Address_space.create ~id:2 in
  Address_space.map_kernel xc ~global:true ~vpn:Address_space.kernel_base_vpn
    ~pages:8 ~first_pfn:0;
  Alcotest.(check bool) "xlibos kernel global" true (Address_space.kernel_global xc);
  Alcotest.(check int) "kernel pages" 8 (Address_space.kernel_pages xc);
  Alcotest.(check int) "user pages" 4 (Address_space.user_pages pv)

let test_aspace_share_kernel () =
  let src = Address_space.create ~id:1 in
  Address_space.map_kernel src ~global:true ~vpn:Address_space.kernel_base_vpn
    ~pages:8 ~first_pfn:0;
  Address_space.map_user src ~vpn:10 ~pages:4 ~first_pfn:100;
  let dst = Address_space.create ~id:2 in
  Address_space.share_kernel_into ~src ~dst;
  Alcotest.(check int) "kernel shared" 8 (Address_space.kernel_pages dst);
  Alcotest.(check int) "user not shared" 0 (Address_space.user_pages dst)

let test_mode_of_stack_pointer () =
  Alcotest.(check bool) "user stack" true
    (Xc_cpu.Mode.of_stack_pointer 0x7fff_0000_0000L = Xc_cpu.Mode.Guest_user);
  Alcotest.(check bool) "kernel stack (msb set)" true
    (Xc_cpu.Mode.of_stack_pointer 0xffff_8800_0000_0000L = Xc_cpu.Mode.Guest_kernel)

(* ---------------- TLB ---------------- *)

let test_tlb_hit_miss () =
  let t = Tlb.create () in
  Alcotest.(check bool) "first is miss" true (Tlb.access t ~vpn:1 ~global:false = `Miss);
  Alcotest.(check bool) "second is hit" true (Tlb.access t ~vpn:1 ~global:false = `Hit);
  Alcotest.(check int) "hits" 1 (Tlb.hits t);
  Alcotest.(check int) "misses" 1 (Tlb.misses t)

let test_tlb_global_survives_cr3 () =
  let t = Tlb.create () in
  ignore (Tlb.access t ~vpn:1 ~global:true);
  ignore (Tlb.access t ~vpn:2 ~global:false);
  Tlb.switch_cr3 t;
  Alcotest.(check int) "only global resident" 1 (Tlb.resident t);
  Alcotest.(check bool) "global hits after switch" true
    (Tlb.access t ~vpn:1 ~global:true = `Hit);
  Alcotest.(check bool) "non-global misses after switch" true
    (Tlb.access t ~vpn:2 ~global:false = `Miss);
  Alcotest.(check int) "cr3 counted" 1 (Tlb.cr3_switches t)

let test_tlb_flush_all () =
  let t = Tlb.create () in
  ignore (Tlb.access t ~vpn:1 ~global:true);
  Tlb.flush_all t;
  Alcotest.(check int) "empty after full flush" 0 (Tlb.resident t);
  Alcotest.(check int) "full flush counted" 1 (Tlb.full_flushes t)

let test_tlb_flush_page () =
  let t = Tlb.create () in
  ignore (Tlb.access t ~vpn:7 ~global:false);
  Tlb.flush_page t ~vpn:7;
  Alcotest.(check bool) "invlpg evicts" true (Tlb.access t ~vpn:7 ~global:false = `Miss)

let test_tlb_capacity () =
  let t = Tlb.create ~capacity:16 () in
  for vpn = 0 to 63 do
    ignore (Tlb.access t ~vpn ~global:false)
  done;
  Alcotest.(check bool) "bounded" true (Tlb.resident t <= 16)

let test_tlb_reset_counters () =
  let t = Tlb.create () in
  ignore (Tlb.access t ~vpn:1 ~global:false);
  Tlb.reset_counters t;
  Alcotest.(check int) "misses reset" 0 (Tlb.misses t)

(* The Section 4.3 effect, end to end: with global kernel mappings, a
   process switch preserves the kernel working set in the TLB. *)
let test_tlb_global_bit_effect () =
  let run ~global =
    let t = Tlb.create () in
    (* Touch 64 kernel pages, then switch processes, then touch again. *)
    for vpn = 0 to 63 do
      ignore (Tlb.access t ~vpn:(Address_space.kernel_base_vpn + vpn) ~global)
    done;
    Tlb.reset_counters t;
    Tlb.switch_cr3 t;
    for vpn = 0 to 63 do
      ignore (Tlb.access t ~vpn:(Address_space.kernel_base_vpn + vpn) ~global)
    done;
    Tlb.misses t
  in
  Alcotest.(check int) "X-LibOS (global): no kernel refill" 0 (run ~global:true);
  Alcotest.(check int) "stock PV (non-global): full refill" 64 (run ~global:false)

(* ---------------- KPTI ---------------- *)

let make_full_aspace () =
  let a = Address_space.create ~id:1 in
  Address_space.map_kernel a ~global:true ~vpn:Address_space.kernel_base_vpn
    ~pages:64 ~first_pfn:0;
  Address_space.map_user a ~vpn:16 ~pages:32 ~first_pfn:1000;
  a

let test_kpti_user_view () =
  let k = Kpti.create (make_full_aspace ()) in
  Alcotest.(check bool) "no kernel leak" false (Kpti.user_view_leaks_kernel k);
  (* User view holds the user pages plus only the trampolines. *)
  Alcotest.(check int) "user view size"
    (32 + Kpti.trampoline_pages)
    (Page_table.entry_count (Kpti.user_view k));
  Alcotest.(check int) "full view untouched" (64 + 32)
    (Page_table.entry_count (Kpti.full_view k))

let test_kpti_transitions () =
  let k = Kpti.create (make_full_aspace ()) in
  let tlb = Tlb.create () in
  ignore (Tlb.access tlb ~vpn:1 ~global:false);
  Kpti.kernel_entry k tlb;
  Kpti.kernel_exit k tlb;
  Alcotest.(check int) "two CR3 writes" 2 (Kpti.transitions k);
  Alcotest.(check int) "tlb saw the switches" 2 (Tlb.cr3_switches tlb)

let suites =
  [
    ( "mem.page_table",
      [
        Alcotest.test_case "map/lookup" `Quick test_pt_map_lookup;
        Alcotest.test_case "global count" `Quick test_pt_global_count;
        Alcotest.test_case "map_range/copy" `Quick test_pt_map_range_and_copy;
        Alcotest.test_case "addr conversion" `Quick test_pt_addr_conversion;
      ] );
    ( "mem.address_space",
      [
        Alcotest.test_case "regions" `Quick test_aspace_regions;
        Alcotest.test_case "map validation" `Quick test_aspace_map_validation;
        Alcotest.test_case "global policy" `Quick test_aspace_global_policy;
        Alcotest.test_case "share kernel" `Quick test_aspace_share_kernel;
        Alcotest.test_case "mode from stack pointer" `Quick test_mode_of_stack_pointer;
      ] );
    ( "mem.tlb",
      [
        Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
        Alcotest.test_case "global survives cr3" `Quick test_tlb_global_survives_cr3;
        Alcotest.test_case "flush all" `Quick test_tlb_flush_all;
        Alcotest.test_case "flush page" `Quick test_tlb_flush_page;
        Alcotest.test_case "capacity" `Quick test_tlb_capacity;
        Alcotest.test_case "reset counters" `Quick test_tlb_reset_counters;
        Alcotest.test_case "global-bit effect (S4.3)" `Quick test_tlb_global_bit_effect;
      ] );
    ( "mem.kpti",
      [
        Alcotest.test_case "user view" `Quick test_kpti_user_view;
        Alcotest.test_case "transitions" `Quick test_kpti_transitions;
      ] );
  ]
