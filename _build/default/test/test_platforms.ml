(* Tests for the platform layer: configuration grid, the capability
   matrix of Section 2.3, syscall-path costs, and the closed-loop
   benchmark driver. *)

open Xc_platforms

let cfg ?(cloud = Config.Amazon_ec2) ?(patched = true) runtime =
  Config.make ~cloud ~meltdown_patched:patched runtime

(* ---------------- Config ---------------- *)

let test_names () =
  Alcotest.(check string) "patched" "X-Container" (Config.name (cfg Config.X_container));
  Alcotest.(check string) "unpatched" "Docker-unpatched"
    (Config.name (cfg ~patched:false Config.Docker))

let test_ten_configurations () =
  let configs = Config.ten_configurations Config.Amazon_ec2 in
  Alcotest.(check int) "ten" 10 (List.length configs);
  let names = List.map Config.name configs in
  Alcotest.(check bool) "unique names" true
    (List.length (List.sort_uniq compare names) = 10)

let test_capability_matrix () =
  let supports = Config.supports in
  (* Section 2.3: the X-Container claim is being the only LibOS platform
     with binary compatibility AND multicore processing. *)
  Alcotest.(check bool) "xc binary compat" true
    (supports Config.X_container Config.Binary_compat);
  Alcotest.(check bool) "xc multicore" true
    (supports Config.X_container Config.Multicore);
  Alcotest.(check bool) "gvisor no multicore" false
    (supports Config.Gvisor Config.Multicore);
  Alcotest.(check bool) "gvisor multiprocess" true
    (supports Config.Gvisor Config.Multiprocess);
  Alcotest.(check bool) "unikernel single process" false
    (supports Config.Unikernel Config.Multiprocess);
  Alcotest.(check bool) "graphene partial compat" false
    (supports Config.Graphene Config.Binary_compat);
  Alcotest.(check bool) "clear needs hw virt" false
    (supports Config.Clear_container Config.No_hw_virt);
  Alcotest.(check bool) "xc no hw virt needed" true
    (supports Config.X_container Config.No_hw_virt);
  Alcotest.(check bool) "xc kernel modules (S5.7)" true
    (supports Config.X_container Config.Kernel_modules);
  Alcotest.(check bool) "docker no kernel modules" false
    (supports Config.Docker Config.Kernel_modules)

(* ---------------- Syscall path ---------------- *)

let test_entry_costs_ordering () =
  let e c = Syscall_path.entry_ns c in
  Alcotest.(check bool) "xc cheapest of containers" true
    (e (cfg Config.X_container) < e (cfg Config.Clear_container));
  Alcotest.(check bool) "clear < docker patched" true
    (e (cfg Config.Clear_container) < e (cfg Config.Docker));
  Alcotest.(check bool) "docker < xen pv" true
    (e (cfg Config.Docker) < e (cfg Config.Xen_container));
  Alcotest.(check bool) "xen pv < gvisor" true
    (e (cfg Config.Xen_container) < e (cfg Config.Gvisor))

let test_meltdown_patch_effects () =
  let e ~patched runtime = Syscall_path.entry_ns (cfg ~patched runtime) in
  (* KPTI hurts Docker and Xen-Container; X-Containers and Clear are
     immune (Section 5.4). *)
  Alcotest.(check bool) "docker hurt" true
    (e ~patched:true Config.Docker > e ~patched:false Config.Docker);
  Alcotest.(check bool) "xen-container hurt" true
    (e ~patched:true Config.Xen_container > e ~patched:false Config.Xen_container);
  Alcotest.(check (float 1e-9)) "xc immune"
    (e ~patched:false Config.X_container) (e ~patched:true Config.X_container);
  Alcotest.(check (float 1e-9)) "clear immune"
    (e ~patched:false Config.Clear_container) (e ~patched:true Config.Clear_container)

let test_coverage_interpolation () =
  let c = cfg Config.X_container in
  let full = Syscall_path.effective_entry_ns c ~abom_coverage:1.0 in
  let none = Syscall_path.effective_entry_ns c ~abom_coverage:0.0 in
  let half = Syscall_path.effective_entry_ns c ~abom_coverage:0.5 in
  Alcotest.(check (float 1e-9)) "0%% = forwarded" (Syscall_path.unpatched_site_ns c) none;
  Alcotest.(check (float 1e-9)) "100%% = fast" (Syscall_path.entry_ns c) full;
  Alcotest.(check (float 1e-6)) "50%% midway" ((full +. none) /. 2.) half;
  (* Coverage is irrelevant on other platforms. *)
  let d = cfg Config.Docker in
  Alcotest.(check (float 1e-9)) "docker ignores coverage"
    (Syscall_path.effective_entry_ns d ~abom_coverage:0.1)
    (Syscall_path.effective_entry_ns d ~abom_coverage:0.9)

let test_interrupt_path () =
  Alcotest.(check bool) "xc events cheapest" true
    (Syscall_path.interrupt_ns (cfg Config.X_container)
    < Syscall_path.interrupt_ns (cfg Config.Xen_container));
  Alcotest.(check bool) "graphene multiproc tax" true
    (Syscall_path.graphene_entry_ns ~multiprocess:true
    > Syscall_path.graphene_entry_ns ~multiprocess:false)

(* ---------------- Platform ---------------- *)

let test_platform_costs () =
  let xc = Platform.create (cfg Config.X_container) in
  let docker = Platform.create (cfg Config.Docker) in
  Alcotest.(check bool) "xc syscall cheaper" true
    (Platform.syscall_ns xc (Xc_os.Kernel.Cheap Xc_os.Syscall_nr.Getpid)
    < Platform.syscall_ns docker (Xc_os.Kernel.Cheap Xc_os.Syscall_nr.Getpid));
  (* Section 5.4: process creation and context switching slower on XC. *)
  Alcotest.(check bool) "xc fork dearer" true
    (Platform.fork_ns xc > Platform.fork_ns docker);
  Alcotest.(check bool) "xc process switch dearer" true
    (Platform.process_switch_ns xc > Platform.process_switch_ns docker)

let test_container_switch_scaling () =
  let docker = Platform.create (cfg Config.Docker) in
  let xc = Platform.create (cfg Config.X_container) in
  (* Flat runqueue of 1600 vs hierarchy of 400: the Figure 8 mechanism. *)
  Alcotest.(check bool) "flat switch blows up at scale" true
    (Platform.container_switch_ns docker ~runnable:1600
    > 2. *. Platform.container_switch_ns xc ~runnable:400);
  Alcotest.(check bool) "both grow with load" true
    (Platform.container_switch_ns docker ~runnable:1600
     > Platform.container_switch_ns docker ~runnable:16
    && Platform.container_switch_ns xc ~runnable:400
       > Platform.container_switch_ns xc ~runnable:4)

let test_max_instances () =
  let at runtime =
    Platform.max_instances (Platform.create (cfg runtime)) ~host_memory_mb:(96 * 1024)
  in
  (* Section 5.6's boot ceilings. *)
  Alcotest.(check int) "HVM stops at 200" 200 (at Config.Xen_hvm);
  Alcotest.(check int) "PV stops at 250" 250 (at Config.Xen_pv);
  Alcotest.(check bool) "XC fits 400+" true (at Config.X_container >= 400);
  Alcotest.(check bool) "Docker fits 400+" true (at Config.Docker >= 400)

let test_net_hops_by_runtime () =
  let has hop runtime =
    List.mem hop (Platform.net_hops (Platform.create (cfg runtime)))
  in
  Alcotest.(check bool) "xc uses split driver" true
    (has Xc_net.Netpath.Split_driver Config.X_container);
  Alcotest.(check bool) "docker does not" false
    (has Xc_net.Netpath.Split_driver Config.Docker);
  Alcotest.(check bool) "gvisor has netstack" true
    (has Xc_net.Netpath.Gvisor_netstack Config.Gvisor);
  Alcotest.(check bool) "clear pays nested exits" true
    (has Xc_net.Netpath.Nested_exit Config.Clear_container)

let test_iperf_chunks () =
  let per runtime = Platform.iperf_per_chunk_cpu_ns (Platform.create (cfg runtime)) in
  Alcotest.(check bool) "gvisor chunk dearest" true
    (per Config.Gvisor > per Config.Clear_container);
  Alcotest.(check bool) "clear dearer than xc" true
    (per Config.Clear_container > per Config.X_container);
  Alcotest.(check bool) "xc dearer than docker" true
    (per Config.X_container > per Config.Docker)

(* ---------------- Closed loop ---------------- *)

let base_server service =
  { Closed_loop.units = 1; service_ns = (fun _ -> service); overhead_ns = 0. }

let test_closed_loop_deterministic () =
  let config = { Closed_loop.default_config with duration_ns = 1e8; warmup_ns = 1e7 } in
  let r1 = Closed_loop.run config (base_server 20_000.) in
  let r2 = Closed_loop.run config (base_server 20_000.) in
  Alcotest.(check (float 1e-9)) "same seed same result" r1.throughput_rps r2.throughput_rps;
  let r3 = Closed_loop.run { config with seed = 99 } (base_server 20_000.) in
  Alcotest.(check bool) "ran" true (r3.completed > 0)

let test_closed_loop_saturated_capacity () =
  (* Many connections, one unit: throughput approaches 1/service. *)
  let config =
    { Closed_loop.default_config with connections = 64; duration_ns = 1e9; warmup_ns = 2e8 }
  in
  let r = Closed_loop.run config (base_server 50_000.) in
  let ideal = 1e9 /. 50_000. in
  Alcotest.(check bool) "within 10% of capacity" true
    (r.throughput_rps > 0.9 *. ideal && r.throughput_rps < 1.1 *. ideal)

let test_closed_loop_latency_floor () =
  let config = { Closed_loop.default_config with connections = 1; duration_ns = 1e8 } in
  let r = Closed_loop.run config (base_server 10_000.) in
  (* One connection: latency = rtt + service, throughput = 1/latency. *)
  let expected = config.rtt_ns +. 10_000. in
  Alcotest.(check bool) "mean latency near floor" true
    (r.mean_latency_ns > 0.95 *. expected && r.mean_latency_ns < 1.1 *. expected)

let test_closed_loop_units_scale () =
  let config =
    { Closed_loop.default_config with connections = 64; duration_ns = 5e8; warmup_ns = 1e8 }
  in
  let one = Closed_loop.run config (base_server 50_000.) in
  let four =
    Closed_loop.run config { (base_server 50_000.) with units = 4 }
  in
  Alcotest.(check bool) "4 units ~4x" true
    (four.throughput_rps > 3.2 *. one.throughput_rps)

let test_closed_loop_overhead_hurts () =
  let config =
    { Closed_loop.default_config with connections = 64; duration_ns = 5e8; warmup_ns = 1e8 }
  in
  let clean = Closed_loop.run config (base_server 50_000.) in
  let loaded =
    Closed_loop.run config { (base_server 50_000.) with overhead_ns = 25_000. }
  in
  Alcotest.(check bool) "overhead reduces throughput" true
    (loaded.throughput_rps < 0.8 *. clean.throughput_rps)

let test_closed_loop_run_many () =
  let config =
    { Closed_loop.default_config with connections = 8; duration_ns = 2e8; warmup_ns = 2e7 }
  in
  let results = Closed_loop.run_many config [ base_server 20_000.; base_server 40_000. ] in
  Alcotest.(check int) "two results" 2 (List.length results);
  let a = List.nth results 0 and b = List.nth results 1 in
  Alcotest.(check bool) "faster server wins" true (a.throughput_rps > b.throughput_rps)

let suites =
  [
    ( "platforms.config",
      [
        Alcotest.test_case "names" `Quick test_names;
        Alcotest.test_case "ten configurations" `Quick test_ten_configurations;
        Alcotest.test_case "capability matrix (S2.3)" `Quick test_capability_matrix;
      ] );
    ( "platforms.syscall_path",
      [
        Alcotest.test_case "entry ordering" `Quick test_entry_costs_ordering;
        Alcotest.test_case "meltdown effects" `Quick test_meltdown_patch_effects;
        Alcotest.test_case "coverage interpolation" `Quick test_coverage_interpolation;
        Alcotest.test_case "interrupt path" `Quick test_interrupt_path;
      ] );
    ( "platforms.platform",
      [
        Alcotest.test_case "cost trade-offs (S5.4)" `Quick test_platform_costs;
        Alcotest.test_case "container switch scaling" `Quick
          test_container_switch_scaling;
        Alcotest.test_case "max instances (S5.6)" `Quick test_max_instances;
        Alcotest.test_case "net hops" `Quick test_net_hops_by_runtime;
        Alcotest.test_case "iperf chunks" `Quick test_iperf_chunks;
      ] );
    ( "platforms.closed_loop",
      [
        Alcotest.test_case "deterministic" `Quick test_closed_loop_deterministic;
        Alcotest.test_case "saturated capacity" `Quick
          test_closed_loop_saturated_capacity;
        Alcotest.test_case "latency floor" `Quick test_closed_loop_latency_floor;
        Alcotest.test_case "units scale" `Quick test_closed_loop_units_scale;
        Alcotest.test_case "overhead hurts" `Quick test_closed_loop_overhead_hurts;
        Alcotest.test_case "run_many" `Quick test_closed_loop_run_many;
      ] );
  ]
