(* Fuzz and model-based property tests: the decoder and interpreter must
   be total on arbitrary bytes, the patcher idempotent, and the stateful
   structures equivalent to simple reference models. *)

open Xc_isa

let bytes_gen =
  QCheck.Gen.(map Bytes.of_string (string_size ~gen:(char_range '\x00' '\xff') (int_range 1 256)))

let arb_bytes = QCheck.make ~print:(fun b -> Printf.sprintf "%d bytes" (Bytes.length b)) bytes_gen

(* ---------------- decoder totality ---------------- *)

let decode_total =
  QCheck.Test.make ~name:"decode is total and progresses" ~count:500 arb_bytes
    (fun buf ->
      let rec check off =
        if off >= Bytes.length buf then true
        else begin
          let _insn, len = Codec.decode buf off in
          len >= 1 && len <= 7 && off + len <= Bytes.length buf + 7 && check (off + len)
        end
      in
      check 0)

let decode_all_covers =
  QCheck.Test.make ~name:"decode_all tiles the buffer" ~count:500 arb_bytes
    (fun buf ->
      let decoded = Codec.decode_all buf in
      let total =
        List.fold_left (fun acc (_, insn) -> acc + Insn.length insn) 0 decoded
      in
      (* The last instruction may claim its full encoded length even if
         the tail was truncated to an Invalid byte; the tiling property
         is that offsets are strictly increasing and start at 0. *)
      let offsets = List.map fst decoded in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      (match offsets with [] -> Bytes.length buf = 0 | o :: _ -> o = 0)
      && increasing offsets
      && total >= Bytes.length buf)

let disassemble_total =
  QCheck.Test.make ~name:"disassemble never raises" ~count:200 arb_bytes
    (fun buf ->
      let s = Codec.disassemble buf in
      String.length s >= 0)

(* ---------------- interpreter totality ---------------- *)

let machine_total_on_garbage =
  QCheck.Test.make ~name:"machine total on random code" ~count:300 arb_bytes
    (fun code ->
      let img = Image.create ~size:(Bytes.length code) () in
      (match Image.write img ~off:0 code ~wp_override:true with
      | Ok () -> ()
      | Error _ -> ());
      let m = Machine.create img ~entry:0 in
      match Machine.run ~fuel:2_000 m with
      | Machine.Halted | Machine.Fuel_exhausted | Machine.Fault _ -> true)

let machine_total_with_xkernel_config =
  QCheck.Test.make ~name:"machine total with fixups enabled" ~count:300 arb_bytes
    (fun code ->
      let img = Image.create ~size:(Bytes.length code) () in
      (match Image.write img ~off:0 code ~wp_override:true with
      | Ok () -> ()
      | Error _ -> ());
      let table = Xc_abom.Entry_table.create () in
      (* Register a handful of entries so stray calls can resolve. *)
      for i = 0 to 9 do
        ignore (Xc_abom.Entry_table.address_of table i)
      done;
      let config =
        Machine.xcontainer_config ~lookup:(Xc_abom.Entry_table.lookup table) ()
      in
      let m = Machine.create ~config img ~entry:0 in
      match Machine.run ~fuel:2_000 m with
      | Machine.Halted | Machine.Fuel_exhausted | Machine.Fault _ -> true)

(* ---------------- patcher properties ---------------- *)

let style_gen =
  QCheck.Gen.oneofl
    Builder.[ Glibc_small; Glibc_wide; Go_stack; Cancellable; Exotic ]

let program_gen =
  QCheck.Gen.(list_size (int_range 1 6) (pair style_gen (int_range 0 300)))

let arb_program =
  QCheck.make
    ~print:(fun ws ->
      String.concat ";"
        (List.map (fun (s, n) -> Printf.sprintf "%s:%d" (Builder.style_to_string s) n) ws))
    program_gen

let patch_idempotent =
  QCheck.Test.make ~name:"patching twice changes nothing more" ~count:200
    arb_program (fun wrappers ->
      let prog = Builder.build wrappers in
      let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
      List.iter
        (fun (s : Builder.site) ->
          ignore (Xc_abom.Patcher.patch_site patcher prog.image ~syscall_off:s.syscall_off))
        prog.sites;
      let snapshot = Bytes.copy (Image.code prog.image) in
      let ops_before = Xc_abom.Patcher.cmpxchg_ops patcher in
      List.iter
        (fun (s : Builder.site) ->
          ignore (Xc_abom.Patcher.patch_site patcher prog.image ~syscall_off:s.syscall_off))
        prog.sites;
      Bytes.equal snapshot (Image.code prog.image)
      && Xc_abom.Patcher.cmpxchg_ops patcher = ops_before)

let offline_equivalence =
  QCheck.Test.make ~name:"offline-patched binary trace-equivalent" ~count:150
    arb_program (fun wrappers ->
      let reference =
        let prog = Builder.build wrappers in
        let m = Machine.create prog.image ~entry:prog.entry in
        ignore (Machine.run m);
        Machine.syscall_numbers m
      in
      let patched =
        let prog = Builder.build wrappers in
        let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
        ignore (Xc_abom.Offline_tool.patch_image ~aggressive:true patcher prog.image);
        let config =
          Machine.xcontainer_config
            ~lookup:(Xc_abom.Entry_table.lookup (Xc_abom.Patcher.table patcher))
            ()
        in
        let m = Machine.create ~config prog.image ~entry:prog.entry in
        ignore (Machine.run m);
        Machine.syscall_numbers m
      in
      reference = patched)

let entry_table_roundtrip =
  QCheck.Test.make ~name:"entry table address/lookup roundtrip" ~count:300
    QCheck.(int_range 0 (Xc_abom.Entry_table.max_syscalls - 1))
    (fun n ->
      let t = Xc_abom.Entry_table.create () in
      let addr = Xc_abom.Entry_table.address_of t n in
      match Xc_abom.Entry_table.lookup t addr with
      | Some (Machine.Fixed m) -> m = n
      | _ -> false)

(* ---------------- page table vs a reference model ---------------- *)

module IntMap = Map.Make (Int)

type pt_op = Map_op of int * bool | Unmap_op of int

let pt_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun vpn global -> Map_op (vpn, global)) (int_range 0 40) bool;
        map (fun vpn -> Unmap_op vpn) (int_range 0 40);
      ])

let pt_ops_arb =
  QCheck.make
    ~print:(fun ops -> Printf.sprintf "%d ops" (List.length ops))
    QCheck.Gen.(list_size (int_range 0 200) pt_op_gen)

let page_table_model =
  QCheck.Test.make ~name:"page table agrees with a Map model" ~count:200 pt_ops_arb
    (fun ops ->
      let table = Xc_mem.Page_table.create () in
      let model =
        List.fold_left
          (fun model op ->
            match op with
            | Map_op (vpn, global) ->
                let pte = Xc_mem.Pte.make ~global ~pfn:vpn () in
                Xc_mem.Page_table.map table ~vpn pte;
                IntMap.add vpn pte model
            | Unmap_op vpn ->
                Xc_mem.Page_table.unmap table ~vpn;
                IntMap.remove vpn model)
          IntMap.empty ops
      in
      let count_ok = Xc_mem.Page_table.entry_count table = IntMap.cardinal model in
      let globals_ok =
        Xc_mem.Page_table.global_count table
        = IntMap.fold (fun _ p acc -> if p.Xc_mem.Pte.global then acc + 1 else acc) model 0
      in
      let lookups_ok =
        List.for_all
          (fun vpn ->
            Xc_mem.Page_table.lookup table ~vpn = IntMap.find_opt vpn model)
          (List.init 41 (fun i -> i))
      in
      count_ok && globals_ok && lookups_ok)

(* ---------------- TLB invariant ---------------- *)

let tlb_cr3_invariant =
  QCheck.Test.make ~name:"cr3 switch evicts exactly the non-global set" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 100) (pair (int_range 0 50) bool))
    (fun accesses ->
      let tlb = Xc_mem.Tlb.create ~capacity:256 () in
      List.iter (fun (vpn, global) -> ignore (Xc_mem.Tlb.access tlb ~vpn ~global)) accesses;
      (* Remember which vpns were accessed as global (last access wins is
         not modelled: a vpn is inserted once with its first flag). *)
      let globals =
        List.fold_left
          (fun acc (vpn, global) ->
            if List.mem_assoc vpn acc then acc else (vpn, global) :: acc)
          [] accesses
      in
      Xc_mem.Tlb.switch_cr3 tlb;
      List.for_all
        (fun (vpn, global) ->
          let resident =
            (* A hit without filling means it was resident. *)
            Xc_mem.Tlb.access tlb ~vpn ~global = `Hit
          in
          if global then resident else not resident)
        (List.filteri (fun i _ -> i < 10) globals))

let xelf_total =
  QCheck.Test.make ~name:"xelf deserialize total on garbage" ~count:300 arb_bytes
    (fun blob ->
      match Xelf.deserialize blob with Ok _ | Error _ -> true)

let qsuite props = List.map QCheck_alcotest.to_alcotest props

let suites =
  [
    ( "fuzz.codec",
      qsuite [ decode_total; decode_all_covers; disassemble_total; xelf_total ] );
    ( "fuzz.machine",
      qsuite [ machine_total_on_garbage; machine_total_with_xkernel_config ] );
    ( "fuzz.abom",
      qsuite [ patch_idempotent; offline_equivalence; entry_table_roundtrip ] );
    ("fuzz.mem", qsuite [ page_table_model; tlb_cr3_invariant ]);
  ]
