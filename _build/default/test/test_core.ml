(* Tests for the public X-Containers API: specs, boot model, the Docker
   wrapper, running containers end to end, and the experiment harness. *)

open Xcontainers

let fresh_xkernel () = Xc_hypervisor.Xkernel.create ~pcpus:4 ~memory_mb:16384 ()

(* ---------------- Spec ---------------- *)

let test_spec_validation () =
  let ok = Spec.make ~name:"web" ~image:"nginx:1.13" () in
  (match Spec.validate ok with Ok _ -> () | Error e -> Alcotest.fail e);
  let check_err spec =
    match Spec.validate spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected validation error"
  in
  check_err (Spec.make ~name:"" ~image:"nginx:1.13" ());
  check_err (Spec.make ~vcpus:0 ~name:"x" ~image:"nginx:1.13" ());
  check_err (Spec.make ~memory_mb:32 ~name:"x" ~image:"nginx:1.13" ());
  check_err (Spec.make ~processes:0 ~name:"x" ~image:"nginx:1.13" ())

let test_spec_defaults () =
  let s = Spec.make ~name:"x" ~image:"redis:3.2.11" () in
  Alcotest.(check int) "128MB default (S5.6)" Spec.default_memory_mb s.Spec.memory_mb;
  Alcotest.(check int) "1 vcpu" 1 s.Spec.vcpus

(* ---------------- Boot ---------------- *)

let test_boot_times () =
  let xl = Boot.xcontainer () in
  Alcotest.(check (float 1.0)) "xl total 3s" 3e9 xl.Boot.total_ns;
  let lightvm = Boot.xcontainer ~toolstack:Boot.Lightvm () in
  Alcotest.(check bool) "lightvm under 200ms" true (lightvm.Boot.total_ns < 2e8);
  Alcotest.(check bool) "docker beats the xl toolstack" true
    ((Boot.docker ()).Boot.total_ns < xl.Boot.total_ns);
  Alcotest.(check bool) "lightvm toolstack beats docker" true
    (lightvm.Boot.total_ns < (Boot.docker ()).Boot.total_ns);
  Alcotest.(check bool) "full VM slowest" true
    ((Boot.xen_vm ()).Boot.total_ns > xl.Boot.total_ns)

(* ---------------- Docker wrapper ---------------- *)

let test_wrapper_registry () =
  let images = Docker_wrapper.registry () in
  Alcotest.(check bool) "at least the paper's images" true (List.length images >= 6);
  (match Docker_wrapper.pull "nginx:1.13" with
  | Ok i -> Alcotest.(check string) "exact" "nginx:1.13" i.Docker_wrapper.name
  | Error e -> Alcotest.fail e);
  (match Docker_wrapper.pull "redis:latest" with
  | Ok i -> Alcotest.(check string) "prefix match" "redis:3.2.11" i.Docker_wrapper.name
  | Error e -> Alcotest.fail e);
  match Docker_wrapper.pull "oracle:12c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown image must fail"

(* ---------------- Xcontainer lifecycle ---------------- *)

let test_boot_and_run () =
  let xk = fresh_xkernel () in
  let spec = Spec.make ~name:"web" ~image:"nginx:1.13" () in
  match Xcontainer.boot ~xkernel:xk spec with
  | Error e -> Alcotest.fail e
  | Ok xc ->
      Alcotest.(check bool) "domain running" true
        (Xc_hypervisor.Domain.state (Xcontainer.domain xc) = Xc_hypervisor.Domain.Running);
      (* The bootloader spawned nginx master+worker without an init. *)
      Alcotest.(check bool) "processes spawned" true
        (List.length (Xcontainer.processes xc) >= 2);
      (* X-LibOS is configured as a LibOS: global kernel mappings. *)
      Alcotest.(check bool) "xlibos config" true
        (Xc_os.Kernel.config (Xcontainer.libos xc)).Xc_os.Kernel.kernel_global;
      (match Xcontainer.exec_program ~repeat:50 xc with
      | Ok Xc_isa.Machine.Halted -> ()
      | Ok _ -> Alcotest.fail "program did not halt"
      | Error e -> Alcotest.fail e);
      let stats = Xcontainer.syscall_stats xc in
      Alcotest.(check bool) "syscalls happened" true (stats.Xcontainer.total > 0);
      (* After the first pass every site is patched: reduction near 1. *)
      Alcotest.(check bool) "ABOM converted nearly all" true
        (stats.Xcontainer.reduction > 0.95);
      Alcotest.(check int) "total = trap + fast" stats.Xcontainer.total
        (stats.Xcontainer.via_trap + stats.Xcontainer.via_function_call);
      (match Xcontainer.profile xc with
      | Some p ->
          Alcotest.(check int) "profile agrees with stats"
            stats.Xcontainer.total p.Xc_abom.Profile.total
      | None -> Alcotest.fail "expected a profile");
      Xcontainer.shutdown ~xkernel:xk xc

let test_boot_failures () =
  let xk = fresh_xkernel () in
  (match Xcontainer.boot ~xkernel:xk (Spec.make ~name:"" ~image:"nginx:1.13" ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid spec must fail");
  (match Xcontainer.boot ~xkernel:xk (Spec.make ~name:"x" ~image:"nope:1" ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown image must fail");
  match
    Xcontainer.boot ~xkernel:xk
      (Spec.make ~memory_mb:1_000_000 ~name:"big" ~image:"nginx:1.13" ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized container must fail"

let test_shutdown_frees_memory () =
  let xk = fresh_xkernel () in
  let before = Xc_hypervisor.Xkernel.free_memory_mb xk in
  let spec = Spec.make ~name:"tmp" ~image:"redis:3.2.11" () in
  (match Xcontainer.boot ~xkernel:xk spec with
  | Ok xc ->
      Alcotest.(check int) "memory taken" (before - 128)
        (Xc_hypervisor.Xkernel.free_memory_mb xk);
      Xcontainer.shutdown ~xkernel:xk xc;
      Alcotest.(check int) "memory back" before (Xc_hypervisor.Xkernel.free_memory_mb xk)
  | Error e -> Alcotest.fail e)

let test_mysql_container_keeps_trapping () =
  (* The cancellable wrappers in the mysql image stay unpatched online. *)
  let xk = fresh_xkernel () in
  match Xcontainer.boot ~xkernel:xk (Spec.make ~name:"db" ~image:"mysql:5.7" ()) with
  | Error e -> Alcotest.fail e
  | Ok xc ->
      (match Xcontainer.exec_program ~repeat:50 xc with
      | Ok Xc_isa.Machine.Halted -> ()
      | Ok _ | Error _ -> Alcotest.fail "run failed");
      let stats = Xcontainer.syscall_stats xc in
      Alcotest.(check bool) "reduction well below 1" true
        (stats.Xcontainer.reduction < 0.8);
      Alcotest.(check bool) "but some conversion" true
        (stats.Xcontainer.reduction > 0.2)

let test_service_time () =
  let xk = fresh_xkernel () in
  match Xcontainer.boot ~xkernel:xk (Spec.make ~name:"web" ~image:"nginx:1.13" ()) with
  | Error e -> Alcotest.fail e
  | Ok xc -> begin
      let p =
        Xc_platforms.Platform.create (Xc_platforms.Config.make Xc_platforms.Config.X_container)
      in
      match Xcontainer.service_time_ns xc ~platform:p with
      | Some ns -> Alcotest.(check bool) "positive service" true (ns > 0.)
      | None -> Alcotest.fail "nginx image has a recipe"
    end

(* ---------------- Experiment harness ---------------- *)

let test_experiment_normalise () =
  let samples =
    Experiment.collect ~names:[ "base"; "fast" ]
      ~name_of:(fun n -> n)
      ~runs:5
      (fun name ~seed ->
        let jitter = float_of_int (seed mod 7) *. 0.1 in
        match name with "base" -> 100. +. jitter | _ -> 200. +. jitter)
  in
  let rows = Experiment.normalise ~baseline:"base" samples in
  (match Experiment.relative_of rows "base" with
  | Some r -> Alcotest.(check (float 1e-9)) "baseline is 1" 1.0 r
  | None -> Alcotest.fail "baseline row");
  (match Experiment.relative_of rows "fast" with
  | Some r -> Alcotest.(check bool) "fast ~2x" true (r > 1.9 && r < 2.1)
  | None -> Alcotest.fail "fast row");
  let table = Experiment.to_table ~value_header:"req/s" rows in
  Alcotest.(check bool) "renders" true (String.length (Xc_sim.Table.render table) > 0)

let test_experiment_missing_baseline () =
  let samples =
    Experiment.collect ~names:[ "a" ] ~name_of:(fun n -> n) ~runs:1
      (fun _ ~seed:_ -> 1.)
  in
  Alcotest.check_raises "missing baseline"
    (Invalid_argument "Experiment.normalise: no baseline nope") (fun () ->
      ignore (Experiment.normalise ~baseline:"nope" samples))

(* ---------------- Figures (smoke) ---------------- *)

let test_fig3_structure () =
  let results = Figures.fig3 Xc_platforms.Config.Amazon_ec2 Figures.Redis_app in
  Alcotest.(check int) "ten configurations" 10 (List.length results);
  let rel = Figures.relative_throughput results in
  (match List.assoc_opt "Docker" rel with
  | Some v -> Alcotest.(check (float 1e-9)) "baseline 1.0" 1.0 v
  | None -> Alcotest.fail "docker baseline");
  List.iter
    (fun r ->
      Alcotest.(check bool) "positive tput" true (r.Figures.throughput_rps > 0.))
    results

let test_boot_rows () =
  Alcotest.(check int) "four boot rows" 4 (List.length (Figures.boot_times ()))

let suites =
  [
    ( "core.spec",
      [
        Alcotest.test_case "validation" `Quick test_spec_validation;
        Alcotest.test_case "defaults" `Quick test_spec_defaults;
      ] );
    ("core.boot", [ Alcotest.test_case "times (S4.5)" `Quick test_boot_times ]);
    ( "core.docker_wrapper",
      [ Alcotest.test_case "registry/pull" `Quick test_wrapper_registry ] );
    ( "core.xcontainer",
      [
        Alcotest.test_case "boot and run" `Quick test_boot_and_run;
        Alcotest.test_case "boot failures" `Quick test_boot_failures;
        Alcotest.test_case "shutdown frees memory" `Quick test_shutdown_frees_memory;
        Alcotest.test_case "mysql keeps trapping" `Quick
          test_mysql_container_keeps_trapping;
        Alcotest.test_case "service time" `Quick test_service_time;
      ] );
    ( "core.experiment",
      [
        Alcotest.test_case "normalise" `Quick test_experiment_normalise;
        Alcotest.test_case "missing baseline" `Quick test_experiment_missing_baseline;
      ] );
    ( "core.figures",
      [
        Alcotest.test_case "fig3 structure" `Quick test_fig3_structure;
        Alcotest.test_case "boot rows" `Quick test_boot_rows;
      ] );
  ]
