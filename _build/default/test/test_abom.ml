(* Tests for ABOM: the online binary patcher, its equivalence guarantees
   (including intermediate patch states and stray jumps into patched
   code), and the offline tool. *)

open Xc_isa
open Xc_abom

let insn = Alcotest.testable Insn.pp Insn.equal

let fresh_patcher () = Patcher.create (Entry_table.create ())

let run_to_halt m =
  match Machine.run m with
  | Machine.Halted -> ()
  | Fuel_exhausted -> Alcotest.fail "fuel exhausted"
  | Fault msg -> Alcotest.fail ("fault: " ^ msg)

(* Execute a program under the X-Kernel (ABOM live), [repeat] times, and
   return the machine. *)
let run_with_abom ?(repeat = 2) patcher (prog : Builder.program) =
  let config = Patcher.machine_config patcher () in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  for _ = 1 to repeat do
    Machine.reset m ~entry:prog.entry;
    run_to_halt m
  done;
  m

(* ---------------- Entry table ---------------- *)

let test_entry_table_addresses () =
  let t = Entry_table.create () in
  Alcotest.(check int64) "syscall 0" 0xffffffffff600000L (Entry_table.address_of t 0);
  Alcotest.(check int64) "syscall 1" 0xffffffffff600008L (Entry_table.address_of t 1);
  Alcotest.(check int64) "dynamic" 0xffffffffff600c08L Entry_table.dynamic_address

let test_entry_table_lookup () =
  let t = Entry_table.create () in
  let addr = Entry_table.address_of t 39 in
  (match Entry_table.lookup t addr with
  | Some (Machine.Fixed 39) -> ()
  | _ -> Alcotest.fail "fixed lookup");
  (match Entry_table.lookup t Entry_table.dynamic_address with
  | Some Machine.Dynamic -> ()
  | _ -> Alcotest.fail "dynamic lookup");
  (match Entry_table.lookup t 0x1234L with
  | None -> ()
  | Some _ -> Alcotest.fail "foreign address must not resolve");
  (* Misaligned address inside the table range. *)
  match Entry_table.lookup t 0xffffffffff600004L with
  | None -> ()
  | Some _ -> Alcotest.fail "misaligned address must not resolve"

let test_entry_table_bounds () =
  let t = Entry_table.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Entry_table.address_of: syscall number out of range")
    (fun () -> ignore (Entry_table.address_of t (-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Entry_table.address_of: syscall number out of range")
    (fun () -> ignore (Entry_table.address_of t Entry_table.max_syscalls));
  ignore (Entry_table.address_of t 5);
  ignore (Entry_table.address_of t 5);
  Alcotest.(check (list int)) "registered dedup" [ 5 ] (Entry_table.registered t)

(* ---------------- 7-byte case 1 ---------------- *)

let test_patch_case1_bytes () =
  let prog = Builder.build [ (Builder.Glibc_small, 0) ] in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  (match Patcher.patch_site p prog.image ~syscall_off:site.syscall_off with
  | Patcher.Patched_case1 -> ()
  | other -> Alcotest.failf "expected case1, got %s" (Patcher.outcome_to_string other));
  (* The mov+syscall pair is now a single 7-byte call. *)
  let patched, len = Image.insn_at prog.image site.wrapper_off in
  Alcotest.check insn "call installed" (Call_abs 0xffffffffff600000L) patched;
  Alcotest.(check int) "7 bytes" 7 len;
  Alcotest.(check int) "one cmpxchg" 1 (Patcher.cmpxchg_ops p);
  (* Code page is read-only, so the patch dirtied it. *)
  Alcotest.(check bool) "page dirty" true
    (Image.page_dirty prog.image ~page:(site.wrapper_off / Image.page_size))

let test_patch_case1_equivalence () =
  let prog = Builder.build [ (Builder.Glibc_small, 3); (Builder.Glibc_small, 39) ] in
  let p = fresh_patcher () in
  let m = run_with_abom ~repeat:3 p prog in
  Alcotest.(check (list int)) "same syscall sequence" [ 3; 39; 3; 39; 3; 39 ]
    (Machine.syscall_numbers m);
  (* First run trapped, later runs went through the call. *)
  let kinds = List.map (fun (e : Machine.event) -> e.kind) (Machine.events m) in
  Alcotest.(check (list bool)) "trap then fast"
    [ true; true; false; false; false; false ]
    (List.map (fun k -> k = `Trap) kinds)

(* ---------------- 7-byte case 2 (Go) ---------------- *)

let test_patch_case2 () =
  let prog = Builder.build [ (Builder.Go_stack, 231) ] in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  (match Patcher.patch_site p prog.image ~syscall_off:site.syscall_off with
  | Patcher.Patched_case2 -> ()
  | other -> Alcotest.failf "expected case2, got %s" (Patcher.outcome_to_string other));
  let patched, _ = Image.insn_at prog.image site.wrapper_off in
  Alcotest.check insn "dynamic entry" (Call_abs Entry_table.dynamic_address) patched

let test_patch_case2_equivalence () =
  let prog = Builder.build [ (Builder.Go_stack, 231) ] in
  let p = fresh_patcher () in
  let m = run_with_abom ~repeat:3 p prog in
  (* The dynamic handler must still read the right syscall number from
     the caller's stack after patching. *)
  Alcotest.(check (list int)) "sysno preserved" [ 231; 231; 231 ]
    (Machine.syscall_numbers m)

(* ---------------- 9-byte two-phase ---------------- *)

let test_patch_9byte_full () =
  let prog = Builder.build [ (Builder.Glibc_wide, 1) ] in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  (match Patcher.patch_site p prog.image ~syscall_off:site.syscall_off with
  | Patcher.Patched_9byte -> ()
  | other -> Alcotest.failf "expected 9byte, got %s" (Patcher.outcome_to_string other));
  Alcotest.(check int) "two cmpxchg (one per phase)" 2 (Patcher.cmpxchg_ops p);
  let call, _ = Image.insn_at prog.image site.wrapper_off in
  Alcotest.check insn "phase1 call" (Call_abs 0xffffffffff600008L) call;
  let jmp, _ = Image.insn_at prog.image site.syscall_off in
  Alcotest.check insn "phase2 jmp back" (Jmp_rel8 (-9)) jmp

let test_patch_9byte_phase1_intermediate_state () =
  (* The paper's concurrency argument: after phase 1 alone the binary
     must still be equivalent (the LibOS return-address check skips the
     leftover syscall).  Freeze phase 1 and execute. *)
  let prog = Builder.build [ (Builder.Glibc_wide, 60) ] in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  (match
     Patcher.patch_site ~stop_after_phase1:true p prog.image
       ~syscall_off:site.syscall_off
   with
  | Patcher.Patched_9byte -> ()
  | other -> Alcotest.failf "unexpected %s" (Patcher.outcome_to_string other));
  (* The original syscall is still there. *)
  let leftover, _ = Image.insn_at prog.image site.syscall_off in
  Alcotest.check insn "syscall left in place" Insn.Syscall leftover;
  let config = Machine.xcontainer_config ~lookup:(Entry_table.lookup (Patcher.table p)) () in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  run_to_halt m;
  (* Exactly one syscall event (fast), not two: the skip check consumed
     the trailing syscall instruction. *)
  Alcotest.(check (list int)) "one syscall, right number" [ 60 ]
    (Machine.syscall_numbers m);
  match Machine.events m with
  | [ e ] -> Alcotest.(check bool) "fast path" true (e.kind = `Fast)
  | _ -> Alcotest.fail "expected exactly one event"

let test_patch_9byte_phase2_jmp_execution () =
  (* After the full patch, control falling onto the jmp must bounce back
     into the call and still perform exactly one syscall. *)
  let prog = Builder.build [ (Builder.Glibc_wide, 2) ] in
  let p = fresh_patcher () in
  let m = run_with_abom ~repeat:2 p prog in
  Alcotest.(check (list int)) "trace" [ 2; 2 ] (Machine.syscall_numbers m)

(* ---------------- stray jump into patched bytes ---------------- *)

let test_invalid_opcode_fixup () =
  (* A second entry point jumps directly at the original syscall
     location; after the 7-byte patch that lands mid-call on 0x60 0xff,
     and the X-Kernel fixup must back rip up onto the call. *)
  let prog = Builder.build_direct_jump ~style:Builder.Glibc_small ~sysno:13 in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  (* Patch the site first (as if the wrapper path ran earlier). *)
  (match Patcher.patch_site p prog.image ~syscall_off:site.syscall_off with
  | Patcher.Patched_case1 -> ()
  | other -> Alcotest.failf "unexpected %s" (Patcher.outcome_to_string other));
  let config = Machine.xcontainer_config ~lookup:(Entry_table.lookup (Patcher.table p)) () in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  run_to_halt m;
  Alcotest.(check (list int)) "fixup preserves the syscall" [ 13 ]
    (Machine.syscall_numbers m)

let test_invalid_opcode_without_fixup_faults () =
  let prog = Builder.build_direct_jump ~style:Builder.Glibc_small ~sysno:13 in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  ignore (Patcher.patch_site p prog.image ~syscall_off:site.syscall_off);
  (* Plain CPU without the X-Kernel trap handler: must fault. *)
  let config =
    {
      Machine.default_config with
      vsyscall_lookup = Entry_table.lookup (Patcher.table p);
    }
  in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  match Machine.run m with
  | Fault _ -> ()
  | _ -> Alcotest.fail "expected invalid-opcode fault without the fixup"

(* ---------------- unrecognised / already patched ---------------- *)

let test_cancellable_unrecognized () =
  let prog = Builder.build [ (Builder.Cancellable, 0) ] in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  match Patcher.patch_site p prog.image ~syscall_off:site.syscall_off with
  | Patcher.Unrecognized -> ()
  | other -> Alcotest.failf "expected unrecognized, got %s" (Patcher.outcome_to_string other)

let test_already_patched () =
  let prog = Builder.build [ (Builder.Glibc_small, 0) ] in
  let site = List.hd prog.sites in
  let p = fresh_patcher () in
  ignore (Patcher.patch_site p prog.image ~syscall_off:site.syscall_off);
  (* A concurrent vCPU trapping on the same (now rewritten) site. *)
  match Patcher.patch_site p prog.image ~syscall_off:site.syscall_off with
  | Patcher.Already_patched -> ()
  | other -> Alcotest.failf "expected already, got %s" (Patcher.outcome_to_string other)

let test_cancellable_keeps_trapping () =
  let prog = Builder.build [ (Builder.Cancellable, 4) ] in
  let p = fresh_patcher () in
  let m = run_with_abom ~repeat:3 p prog in
  List.iter
    (fun (e : Machine.event) ->
      Alcotest.(check bool) "always trap" true (e.kind = `Trap))
    (Machine.events m);
  Alcotest.(check int) "unrecognized counted" 3 (Patcher.unrecognized_sites p)

(* ---------------- offline tool ---------------- *)

let test_offline_patches_everything_patchable () =
  let prog =
    Builder.build
      [
        (Builder.Glibc_small, 0);
        (Builder.Glibc_wide, 1);
        (Builder.Go_stack, 39);
        (Builder.Cancellable, 3);
        (Builder.Exotic, 4);
      ]
  in
  let p = fresh_patcher () in
  let report = Offline_tool.patch_image p prog.image in
  Alcotest.(check int) "sites seen" 5 report.sites_seen;
  Alcotest.(check int) "3 patched (no aggressive)" 3 report.sites_patched;
  Alcotest.(check int) "2 skipped" 2 report.sites_skipped

let test_offline_aggressive_cancellable () =
  let prog =
    Builder.build [ (Builder.Cancellable, 0); (Builder.Exotic, 1) ]
  in
  let p = fresh_patcher () in
  let report = Offline_tool.patch_image ~aggressive:true p prog.image in
  Alcotest.(check int) "cancellable patched" 1 report.sites_patched;
  Alcotest.(check int) "exotic still skipped" 1 report.sites_skipped

let test_offline_aggressive_equivalence () =
  let prog = Builder.build [ (Builder.Cancellable, 11) ] in
  let p = fresh_patcher () in
  ignore (Offline_tool.patch_image ~aggressive:true p prog.image);
  let config = Machine.xcontainer_config ~lookup:(Entry_table.lookup (Patcher.table p)) () in
  let m = Machine.create ~config prog.image ~entry:prog.entry in
  run_to_halt m;
  Alcotest.(check (list int)) "offline-patched trace" [ 11 ]
    (Machine.syscall_numbers m);
  match Machine.events m with
  | [ e ] -> Alcotest.(check bool) "fast" true (e.kind = `Fast)
  | _ -> Alcotest.fail "one event expected"

(* ---------------- equivalence property ---------------- *)

let abom_equivalence_prop =
  let style_gen =
    QCheck.Gen.oneofl
      [ Builder.Glibc_small; Builder.Glibc_wide; Builder.Go_stack; Builder.Cancellable ]
  in
  let prog_gen =
    QCheck.Gen.(list_size (int_range 1 8) (pair style_gen (int_range 0 300)))
  in
  QCheck.Test.make ~name:"patched binary is trace-equivalent" ~count:150
    (QCheck.make prog_gen) (fun wrappers ->
      let reference =
        let prog = Builder.build wrappers in
        let m = Machine.create prog.image ~entry:prog.entry in
        (* Two plain runs as the reference trace. *)
        ignore (Machine.run m);
        Machine.reset m ~entry:prog.entry;
        ignore (Machine.run m);
        Machine.syscall_numbers m
      in
      let patched =
        let prog = Builder.build wrappers in
        let p = fresh_patcher () in
        let m = run_with_abom ~repeat:2 p prog in
        Machine.syscall_numbers m
      in
      reference = patched)

let suites =
  [
    ( "abom.entry_table",
      [
        Alcotest.test_case "addresses" `Quick test_entry_table_addresses;
        Alcotest.test_case "lookup" `Quick test_entry_table_lookup;
        Alcotest.test_case "bounds" `Quick test_entry_table_bounds;
      ] );
    ( "abom.patcher",
      [
        Alcotest.test_case "case1 bytes" `Quick test_patch_case1_bytes;
        Alcotest.test_case "case1 equivalence" `Quick test_patch_case1_equivalence;
        Alcotest.test_case "case2 (Go)" `Quick test_patch_case2;
        Alcotest.test_case "case2 equivalence" `Quick test_patch_case2_equivalence;
        Alcotest.test_case "9-byte full" `Quick test_patch_9byte_full;
        Alcotest.test_case "9-byte phase-1 state" `Quick
          test_patch_9byte_phase1_intermediate_state;
        Alcotest.test_case "9-byte phase-2 jmp" `Quick
          test_patch_9byte_phase2_jmp_execution;
        Alcotest.test_case "invalid-opcode fixup" `Quick test_invalid_opcode_fixup;
        Alcotest.test_case "no fixup -> fault" `Quick
          test_invalid_opcode_without_fixup_faults;
        Alcotest.test_case "cancellable unrecognized" `Quick
          test_cancellable_unrecognized;
        Alcotest.test_case "already patched" `Quick test_already_patched;
        Alcotest.test_case "cancellable keeps trapping" `Quick
          test_cancellable_keeps_trapping;
        QCheck_alcotest.to_alcotest abom_equivalence_prop;
      ] );
    ( "abom.offline",
      [
        Alcotest.test_case "patches patchable" `Quick
          test_offline_patches_everything_patchable;
        Alcotest.test_case "aggressive cancellable" `Quick
          test_offline_aggressive_cancellable;
        Alcotest.test_case "aggressive equivalence" `Quick
          test_offline_aggressive_equivalence;
      ] );
  ]
