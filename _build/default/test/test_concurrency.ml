(* Concurrency safety of ABOM (Section 4.4).

   "Since each cmpxchg instruction can handle at most eight bytes, if we
   need to modify more than eight bytes, we need to make sure that any
   intermediate state of the binary is still valid for the sake of
   multicore concurrency safety."

   These tests run two vCPUs of one container — two machines sharing one
   image — under randomly interleaved stepping.  vCPU A's traps patch
   sites while vCPU B is anywhere in its own execution, including the
   frozen intermediate phase of the 9-byte rewrite and direct jumps into
   rewritten bytes.  Every interleaving must preserve both vCPUs'
   syscall traces. *)

open Xc_isa

let expected_trace wrappers repeat =
  List.concat (List.init repeat (fun _ -> List.map snd wrappers))

(* Interleave two machines until both halt; returns true if both halted
   cleanly within fuel. *)
let interleave ~rng ~fuel a b =
  let done_a = ref false and done_b = ref false in
  let budget = ref fuel in
  let ok = ref true in
  while (not (!done_a && !done_b)) && !ok && !budget > 0 do
    decr budget;
    let pick_a =
      if !done_a then false
      else if !done_b then true
      else Xc_sim.Prng.bool rng
    in
    let m, flag = if pick_a then (a, done_a) else (b, done_b) in
    match Machine.step_once m with
    | None -> ()
    | Some Machine.Halted -> flag := true
    | Some (Machine.Fault _) | Some Machine.Fuel_exhausted -> ok := false
  done;
  !ok && !done_a && !done_b

let run_pair ~seed wrappers =
  let prog = Builder.build wrappers in
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  let config = Xc_abom.Patcher.machine_config patcher () in
  (* Two vCPUs, same image, separate register/stack state. *)
  let a = Machine.create ~config prog.image ~entry:prog.entry in
  let b = Machine.create ~config prog.image ~entry:prog.entry in
  let rng = Xc_sim.Prng.create seed in
  let rounds = 3 in
  let all_ok = ref true in
  for _ = 1 to rounds do
    Machine.reset a ~entry:prog.entry;
    Machine.reset b ~entry:prog.entry;
    if not (interleave ~rng ~fuel:100_000 a b) then all_ok := false
  done;
  (!all_ok, Machine.syscall_numbers a, Machine.syscall_numbers b)

let test_two_vcpus_basic () =
  let wrappers = [ (Builder.Glibc_small, 3); (Builder.Glibc_wide, 7) ] in
  let ok, ta, tb = run_pair ~seed:11 wrappers in
  Alcotest.(check bool) "no faults" true ok;
  let expected = expected_trace wrappers 3 in
  Alcotest.(check (list int)) "vcpu A trace" expected ta;
  Alcotest.(check (list int)) "vcpu B trace" expected tb

let test_racing_through_patch_phases () =
  (* Dense 9-byte sites maximise the chance B executes mid-phase code. *)
  let wrappers =
    [
      (Builder.Glibc_wide, 1);
      (Builder.Glibc_wide, 2);
      (Builder.Glibc_wide, 3);
      (Builder.Glibc_wide, 4);
    ]
  in
  let ok, ta, tb = run_pair ~seed:23 wrappers in
  Alcotest.(check bool) "no faults" true ok;
  let expected = expected_trace wrappers 3 in
  Alcotest.(check (list int)) "vcpu A trace" expected ta;
  Alcotest.(check (list int)) "vcpu B trace" expected tb

let test_phase1_frozen_while_other_vcpu_runs () =
  (* Patch phase 1 only (as if the patching vCPU were preempted between
     the two cmpxchgs), then let another vCPU run the binary. *)
  let prog = Builder.build [ (Builder.Glibc_wide, 42) ] in
  let site = List.hd prog.sites in
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  (match
     Xc_abom.Patcher.patch_site ~stop_after_phase1:true patcher prog.image
       ~syscall_off:site.Builder.syscall_off
   with
  | Xc_abom.Patcher.Patched_9byte -> ()
  | other -> Alcotest.failf "unexpected %s" (Xc_abom.Patcher.outcome_to_string other));
  let config =
    Machine.xcontainer_config
      ~lookup:(Xc_abom.Entry_table.lookup (Xc_abom.Patcher.table patcher))
      ()
  in
  let b = Machine.create ~config prog.image ~entry:prog.entry in
  (match Machine.run b with
  | Machine.Halted -> ()
  | Fault m -> Alcotest.fail m
  | Fuel_exhausted -> Alcotest.fail "fuel");
  Alcotest.(check (list int)) "intermediate state equivalent" [ 42 ]
    (Machine.syscall_numbers b)

let concurrency_prop =
  let style_gen =
    QCheck.Gen.oneofl
      Builder.[ Glibc_small; Glibc_wide; Go_stack; Cancellable ]
  in
  QCheck.Test.make ~name:"interleaved vcpus keep correct traces" ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 10_000)
           (list_size (int_range 1 5) (pair style_gen (int_range 0 300)))))
    (fun (seed, wrappers) ->
      let ok, ta, tb = run_pair ~seed wrappers in
      let expected = expected_trace wrappers 3 in
      ok && ta = expected && tb = expected)

let suites =
  [
    ( "abom.concurrency",
      [
        Alcotest.test_case "two vcpus" `Quick test_two_vcpus_basic;
        Alcotest.test_case "racing through patch phases" `Quick
          test_racing_through_patch_phases;
        Alcotest.test_case "phase-1 frozen, other vcpu runs" `Quick
          test_phase1_frozen_while_other_vcpu_runs;
        QCheck_alcotest.to_alcotest concurrency_prop;
      ] );
  ]
