test/test_signals.ml: Alcotest Image Insn List Machine Xc_abom Xc_isa
