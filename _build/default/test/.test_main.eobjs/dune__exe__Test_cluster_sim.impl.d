test/test_cluster_sim.ml: Alcotest Float List Printf Xc_apps Xc_platforms
