test/test_fuzz.ml: Builder Bytes Codec Gen Image Insn Int List Machine Map Printf QCheck QCheck_alcotest String Xc_abom Xc_isa Xc_mem Xelf
