test/test_concurrency.ml: Alcotest Builder List Machine QCheck QCheck_alcotest Xc_abom Xc_isa Xc_sim
