test/test_mem.ml: Address_space Alcotest Kpti Page_table Pte Tlb Xc_cpu Xc_mem
