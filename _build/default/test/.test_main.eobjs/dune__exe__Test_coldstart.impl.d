test/test_coldstart.ml: Alcotest Float Xc_apps Xcontainers
