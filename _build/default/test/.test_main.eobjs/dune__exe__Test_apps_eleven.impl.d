test/test_apps_eleven.ml: Alcotest Elasticsearch Etcd Fluentd Influxdb Kernel_build List Memcached Mongodb Mysql Nginx Postgres Printf Rabbitmq Recipe Redis Xc_apps Xc_platforms
