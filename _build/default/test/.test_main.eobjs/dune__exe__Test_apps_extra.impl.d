test/test_apps_extra.ml: Alcotest Etcd List Memcached Mongodb Postgres Rabbitmq Recipe Xc_apps Xc_platforms Xcontainers
