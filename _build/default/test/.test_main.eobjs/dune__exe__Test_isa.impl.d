test/test_isa.ml: Alcotest Builder Bytes Codec Image Insn Int64 List Machine Option Printf QCheck QCheck_alcotest String Xc_isa
