test/test_inventory.ml: Alcotest List Printf Xc_apps Xc_platforms Xcontainers
