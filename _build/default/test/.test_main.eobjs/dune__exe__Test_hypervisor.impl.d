test/test_hypervisor.ml: Alcotest Credit_scheduler Domain Event_channel Hypercall List Pv_mmu Split_driver Vcpu Xc_hypervisor Xc_mem Xkernel
