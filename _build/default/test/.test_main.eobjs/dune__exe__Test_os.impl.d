test/test_os.ml: Alcotest Bytes Cfs Kernel List Pipe Process Syscall_nr Vfs Xc_mem Xc_os
