test/test_substrate_extra.ml: Alcotest Float Printf Xc_apps Xc_hypervisor Xc_os Xc_platforms Xcontainers
