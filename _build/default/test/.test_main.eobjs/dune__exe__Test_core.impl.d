test/test_core.ml: Alcotest Boot Docker_wrapper Experiment Figures List Spec String Xc_abom Xc_hypervisor Xc_isa Xc_os Xc_platforms Xc_sim Xcontainer Xcontainers
