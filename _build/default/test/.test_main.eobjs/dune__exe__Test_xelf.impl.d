test/test_xelf.ml: Alcotest Builder Bytes Filename Image List Machine QCheck QCheck_alcotest Sys Xc_abom Xc_isa Xelf
