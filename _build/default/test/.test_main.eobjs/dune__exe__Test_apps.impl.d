test/test_apps.ml: Alcotest Float Lb_experiment List Memcached Mysql Nginx Profiles Recipe Redis Scalability Serverless Unixbench Xc_apps Xc_net Xc_os Xc_platforms Xc_sim
