test/test_platforms.ml: Alcotest Closed_loop Config List Platform Syscall_path Xc_net Xc_os Xc_platforms
