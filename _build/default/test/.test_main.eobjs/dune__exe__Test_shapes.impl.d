test/test_shapes.ml: Alcotest Float List Printf Xc_apps Xc_platforms Xcontainers
