test/test_sim.ml: Alcotest Array Engine Float Gen Heap Histogram List Metrics Option Prng QCheck QCheck_alcotest Stats String Table Time_ns Xc_sim
