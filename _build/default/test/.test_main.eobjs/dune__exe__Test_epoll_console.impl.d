test/test_epoll_console.ml: Alcotest Bytes Epoll List Socket Xc_hypervisor Xc_os
