test/test_abom.ml: Alcotest Builder Entry_table Image Insn List Machine Offline_tool Patcher QCheck QCheck_alcotest Xc_abom Xc_isa
