test/test_os_net_state.ml: Alcotest Bytes Fd_table Pipe Socket Xc_hypervisor Xc_os
