test/test_profile.ml: Alcotest Builder Float Format List Machine String Xc_abom Xc_isa
