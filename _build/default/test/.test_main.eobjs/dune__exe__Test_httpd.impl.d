test/test_httpd.ml: Alcotest Bytes Xc_apps Xc_hypervisor Xc_os
