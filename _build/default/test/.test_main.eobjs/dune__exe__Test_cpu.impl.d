test/test_cpu.ml: Alcotest Core Costs Mode Smp String Xc_cpu
