test/test_extensions.ml: Alcotest Float List Xc_apps Xc_hypervisor Xc_platforms Xcontainers
