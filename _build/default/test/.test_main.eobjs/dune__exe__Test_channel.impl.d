test/test_channel.ml: Alcotest Bytes Printf Xc_net Xc_os Xc_sim
