test/test_isa_loops.ml: Alcotest Builder Codec Image Insn List Machine Xc_abom Xc_isa
