test/test_net.ml: Alcotest Link List Load_balancer Netpath Tcp_model Xc_net
