(* Tests for the XELF container format and the file-level offline
   patching pipeline. *)

open Xc_isa

let test_roundtrip () =
  let prog =
    Builder.build [ (Builder.Glibc_small, 0); (Builder.Glibc_wide, 1) ]
  in
  Image.set_page_writable prog.image ~page:0 false;
  let blob = Xelf.serialize prog.image in
  match Xelf.deserialize blob with
  | Error e -> Alcotest.fail e
  | Ok img ->
      Alcotest.(check bytes) "code identical" (Image.code prog.image) (Image.code img);
      Alcotest.(check int64) "base" (Image.base prog.image) (Image.base img);
      Alcotest.(check int) "symbols preserved"
        (List.length (Image.symbols prog.image))
        (List.length (Image.symbols img));
      (match Image.find_symbol img "main" with
      | Some s -> Alcotest.(check int) "main offset" 0 s.offset
      | None -> Alcotest.fail "main symbol lost");
      Alcotest.(check bool) "loaded pages clean" true
        (Image.dirty_pages img = [])

let test_bad_inputs () =
  (match Xelf.deserialize (Bytes.of_string "GARBAGE") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic must fail");
  let prog = Builder.build [ (Builder.Glibc_small, 3) ] in
  let blob = Xelf.serialize prog.image in
  let truncated = Bytes.sub blob 0 (Bytes.length blob - 10) in
  match Xelf.deserialize truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated blob must fail"

let test_file_roundtrip () =
  let prog = Builder.build [ (Builder.Go_stack, 39) ] in
  let path = Filename.temp_file "xelf" ".bin" in
  Xelf.save prog.image ~path;
  (match Xelf.load ~path with
  | Error e -> Alcotest.fail e
  | Ok img ->
      Alcotest.(check bytes) "file roundtrip" (Image.code prog.image) (Image.code img));
  Sys.remove path;
  match Xelf.load ~path:"/nonexistent/file.xelf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must fail"

(* The full offline pipeline: build -> save -> load -> patch on disk ->
   save -> load -> run; the trace must equal the never-serialised run. *)
let test_offline_pipeline_equivalence () =
  let wrappers =
    [ (Builder.Glibc_small, 1); (Builder.Glibc_wide, 2); (Builder.Cancellable, 3) ]
  in
  let reference =
    let prog = Builder.build wrappers in
    let m = Machine.create prog.image ~entry:prog.entry in
    ignore (Machine.run m);
    Machine.syscall_numbers m
  in
  let prog = Builder.build wrappers in
  let path = Filename.temp_file "xelf" ".bin" in
  Xelf.save prog.image ~path;
  (* "Ship" the binary, then patch it at rest. *)
  let table = Xc_abom.Entry_table.create () in
  let patcher = Xc_abom.Patcher.create table in
  (match Xelf.load ~path with
  | Error e -> Alcotest.fail e
  | Ok img ->
      let report = Xc_abom.Offline_tool.patch_image ~aggressive:true patcher img in
      Alcotest.(check int) "all three patched" 3 report.sites_patched;
      Xelf.save img ~path);
  (* Load the patched artifact and execute it. *)
  (match Xelf.load ~path with
  | Error e -> Alcotest.fail e
  | Ok img ->
      let config =
        Machine.xcontainer_config ~lookup:(Xc_abom.Entry_table.lookup table) ()
      in
      let m = Machine.create ~config img ~entry:prog.entry in
      (match Machine.run m with
      | Machine.Halted -> ()
      | Fault msg -> Alcotest.fail msg
      | Fuel_exhausted -> Alcotest.fail "fuel");
      Alcotest.(check (list int)) "trace preserved across the pipeline" reference
        (Machine.syscall_numbers m);
      List.iter
        (fun (e : Machine.event) ->
          Alcotest.(check bool) "all fast after offline patch" true (e.kind = `Fast))
        (Machine.events m));
  Sys.remove path

let serialize_prop =
  QCheck.Test.make ~name:"serialize/deserialize identity" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 6)
           (pair
              (oneofl
                 Builder.[ Glibc_small; Glibc_wide; Go_stack; Cancellable; Exotic ])
              (int_range 0 300))))
    (fun wrappers ->
      let prog = Builder.build wrappers in
      match Xelf.deserialize (Xelf.serialize prog.image) with
      | Ok img ->
          Bytes.equal (Image.code prog.image) (Image.code img)
          && Image.base img = Image.base prog.image
          && List.length (Image.symbols img) = List.length (Image.symbols prog.image)
      | Error _ -> false)

let suites =
  [
    ( "isa.xelf",
      [
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "offline pipeline equivalence" `Quick
          test_offline_pipeline_equivalence;
        QCheck_alcotest.to_alcotest serialize_prop;
      ] );
  ]
