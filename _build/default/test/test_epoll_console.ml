(* Tests for the epoll readiness model and the PV console ring. *)

open Xc_os

let connected_pair port =
  let srv = Socket.create () in
  (match Socket.bind srv ~port with Ok () -> () | Error e -> Alcotest.fail e);
  (match Socket.listen srv ~backlog:4 with Ok () -> () | Error e -> Alcotest.fail e);
  let client = Socket.create () in
  (match Socket.connect client ~to_port:port ~namespace:[ srv ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let server_side = match Socket.accept srv with Ok s -> s | Error e -> Alcotest.fail e in
  (srv, client, server_side)

let test_epoll_level_triggered () =
  let _, client, server_side = connected_pair 90 in
  let ep = Epoll.create () in
  (match Epoll.ctl_add ep ~fd:4 server_side Epoll.level_in with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "idle: nothing ready" 0 (List.length (Epoll.wait ep));
  ignore (Socket.send client (Bytes.of_string "hi"));
  (match Epoll.wait ep with
  | [ ev ] ->
      Alcotest.(check int) "fd" 4 ev.Epoll.fd;
      Alcotest.(check bool) "readable" true ev.Epoll.readable
  | other -> Alcotest.failf "expected one event, got %d" (List.length other));
  (* Level-triggered: still ready until drained. *)
  Alcotest.(check int) "still ready" 1 (List.length (Epoll.wait ep));
  ignore (Socket.recv server_side ~max_len:10);
  Alcotest.(check int) "drained: quiet" 0 (List.length (Epoll.wait ep))

let test_epoll_edge_triggered () =
  let _, client, server_side = connected_pair 91 in
  let ep = Epoll.create () in
  ignore (Epoll.ctl_add ep ~fd:7 server_side Epoll.edge_in);
  ignore (Socket.send client (Bytes.of_string "x"));
  Alcotest.(check int) "edge fires once" 1 (List.length (Epoll.wait ep));
  Alcotest.(check int) "no re-fire without new data" 0 (List.length (Epoll.wait ep));
  ignore (Socket.recv server_side ~max_len:10);
  ignore (Epoll.wait ep) (* observe the falling edge *);
  ignore (Socket.send client (Bytes.of_string "y"));
  Alcotest.(check int) "fires on the next rise" 1 (List.length (Epoll.wait ep))

let test_epoll_listener_and_eof () =
  let srv = Socket.create () in
  ignore (Socket.bind srv ~port:92);
  ignore (Socket.listen srv ~backlog:4);
  let ep = Epoll.create () in
  ignore (Epoll.ctl_add ep ~fd:3 srv Epoll.level_in);
  Alcotest.(check int) "no pending connection" 0 (List.length (Epoll.wait ep));
  let client = Socket.create () in
  ignore (Socket.connect client ~to_port:92 ~namespace:[ srv ]);
  (* A pending connection makes the listener readable (accept ready). *)
  Alcotest.(check int) "listener readable" 1 (List.length (Epoll.wait ep));
  let server_side = match Socket.accept srv with Ok s -> s | Error e -> Alcotest.fail e in
  ignore (Epoll.ctl_add ep ~fd:9 server_side Epoll.level_in);
  Socket.close client;
  (* EOF is a readable condition. *)
  let ready = Epoll.wait ep in
  Alcotest.(check bool) "EOF readable" true
    (List.exists (fun (e : Epoll.event) -> e.fd = 9 && e.readable) ready)

let test_epoll_ctl () =
  let ep = Epoll.create () in
  let s = Socket.create () in
  (match Epoll.ctl_add ep ~fd:1 s Epoll.level_in with Ok () -> () | Error e -> Alcotest.fail e);
  (match Epoll.ctl_add ep ~fd:1 s Epoll.level_in with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate add must fail");
  (match Epoll.ctl_mod ep ~fd:1 Epoll.edge_in with Ok () -> () | Error e -> Alcotest.fail e);
  (match Epoll.ctl_del ep ~fd:1 with Ok () -> () | Error e -> Alcotest.fail e);
  (match Epoll.ctl_del ep ~fd:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double del must fail");
  Alcotest.(check int) "empty" 0 (Epoll.watched ep)

(* ---------------- Console ---------------- *)

let test_console_roundtrip () =
  let c = Xc_hypervisor.Console.create ~domid:3 () in
  Alcotest.(check int) "wrote all" 12 (Xc_hypervisor.Console.write c "booting....\n");
  Alcotest.(check int) "buffered" 12 (Xc_hypervisor.Console.buffered c);
  Alcotest.(check string) "read back" "booting....\n" (Xc_hypervisor.Console.read_all c);
  Alcotest.(check int) "drained" 0 (Xc_hypervisor.Console.buffered c)

let test_console_wraparound () =
  let c = Xc_hypervisor.Console.create ~ring_size:8 ~domid:1 () in
  ignore (Xc_hypervisor.Console.write c "abcdef");
  Alcotest.(check string) "first" "abcdef" (Xc_hypervisor.Console.read_all c);
  (* Indices are free-running: the next write wraps the ring. *)
  ignore (Xc_hypervisor.Console.write c "ghijkl");
  Alcotest.(check string) "wrapped" "ghijkl" (Xc_hypervisor.Console.read_all c)

let test_console_drops_when_full () =
  let c = Xc_hypervisor.Console.create ~ring_size:8 ~domid:1 () in
  Alcotest.(check int) "only 8 fit" 8 (Xc_hypervisor.Console.write c "0123456789");
  Alcotest.(check int) "2 dropped" 2 (Xc_hypervisor.Console.dropped c);
  Alcotest.(check string) "kept prefix" "01234567" (Xc_hypervisor.Console.read_all c)

let test_console_validation () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Console.create: ring size must be a power of two")
    (fun () -> ignore (Xc_hypervisor.Console.create ~ring_size:100 ~domid:1 ()))

let suites =
  [
    ( "os.epoll",
      [
        Alcotest.test_case "level triggered" `Quick test_epoll_level_triggered;
        Alcotest.test_case "edge triggered" `Quick test_epoll_edge_triggered;
        Alcotest.test_case "listener and EOF" `Quick test_epoll_listener_and_eof;
        Alcotest.test_case "ctl" `Quick test_epoll_ctl;
      ] );
    ( "hypervisor.console",
      [
        Alcotest.test_case "roundtrip" `Quick test_console_roundtrip;
        Alcotest.test_case "wraparound" `Quick test_console_wraparound;
        Alcotest.test_case "drops when full" `Quick test_console_drops_when_full;
        Alcotest.test_case "validation" `Quick test_console_validation;
      ] );
  ]
