(* Integration tests: a request served end to end through the semantic
   substrate (VFS + sockets + the HTTP model), plus the split driver's
   live grant handshake. *)

let make_server () =
  let kernel = Xc_os.Kernel.create ~config:Xc_os.Kernel.xlibos_config () in
  let vfs = Xc_os.Kernel.vfs kernel in
  (match Xc_os.Vfs.mkdir_p vfs "/var/www" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Xc_os.Vfs.error_to_string e));
  (match
     Xc_os.Vfs.write_file vfs "/var/www/index.html"
       (Bytes.of_string "<h1>X-Containers</h1>")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Xc_os.Vfs.error_to_string e));
  match Xc_apps.Httpd.create ~kernel ~port:80 ~docroot:"/var/www" with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_serves_page () =
  let server = make_server () in
  match Xc_apps.Httpd.get server ~path:"/index.html" with
  | Ok (200, body) ->
      Alcotest.(check string) "body" "<h1>X-Containers</h1>" body;
      Alcotest.(check int) "served one" 1 (Xc_apps.Httpd.requests_served server)
  | Ok (code, _) -> Alcotest.failf "expected 200, got %d" code
  | Error e -> Alcotest.fail e

let test_404 () =
  let server = make_server () in
  match Xc_apps.Httpd.get server ~path:"/missing.html" with
  | Ok (404, _) -> ()
  | Ok (code, _) -> Alcotest.failf "expected 404, got %d" code
  | Error e -> Alcotest.fail e

let test_many_requests () =
  let server = make_server () in
  for _ = 1 to 50 do
    match Xc_apps.Httpd.get server ~path:"/index.html" with
    | Ok (200, _) -> ()
    | Ok (code, _) -> Alcotest.failf "got %d" code
    | Error e -> Alcotest.fail e
  done;
  Alcotest.(check int) "all served" 50 (Xc_apps.Httpd.requests_served server)

let test_bad_docroot () =
  let kernel = Xc_os.Kernel.create () in
  match Xc_apps.Httpd.create ~kernel ~port:80 ~docroot:"/nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing docroot must fail"

(* The split driver's grant handshake, observed through the table. *)
let test_split_driver_grants () =
  let hypercalls = Xc_hypervisor.Hypercall.create () in
  let events = Xc_hypervisor.Event_channel.create Xc_hypervisor.Event_channel.Via_hypervisor in
  let d = Xc_hypervisor.Split_driver.create ~hypercalls ~events ~ring_slots:4 in
  (* A 6000-byte packet spans 2 pages: 2 grants, both mapped. *)
  (match Xc_hypervisor.Split_driver.submit d ~bytes_len:6000 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let gt = Xc_hypervisor.Split_driver.grants d in
  Alcotest.(check int) "two grants live" 2 (Xc_hypervisor.Grant_table.active_grants gt);
  (* Completion unmaps and revokes. *)
  ignore (Xc_hypervisor.Split_driver.complete d ~count:1);
  Alcotest.(check int) "grants reclaimed" 0 (Xc_hypervisor.Grant_table.active_grants gt);
  Alcotest.(check int) "ring drained" 0 (Xc_hypervisor.Split_driver.in_flight d)

let test_split_driver_completion_order () =
  let hypercalls = Xc_hypervisor.Hypercall.create () in
  let events = Xc_hypervisor.Event_channel.create Xc_hypervisor.Event_channel.Via_hypervisor in
  let d = Xc_hypervisor.Split_driver.create ~hypercalls ~events ~ring_slots:4 in
  ignore (Xc_hypervisor.Split_driver.submit d ~bytes_len:1000);
  ignore (Xc_hypervisor.Split_driver.submit d ~bytes_len:1000);
  ignore (Xc_hypervisor.Split_driver.submit d ~bytes_len:1000);
  ignore (Xc_hypervisor.Split_driver.complete d ~count:2);
  Alcotest.(check int) "one left" 1 (Xc_hypervisor.Split_driver.in_flight d);
  let gt = Xc_hypervisor.Split_driver.grants d in
  Alcotest.(check int) "one request's grant live" 1
    (Xc_hypervisor.Grant_table.active_grants gt)

let suites =
  [
    ( "integration.httpd",
      [
        Alcotest.test_case "serves page" `Quick test_serves_page;
        Alcotest.test_case "404" `Quick test_404;
        Alcotest.test_case "many requests" `Quick test_many_requests;
        Alcotest.test_case "bad docroot" `Quick test_bad_docroot;
      ] );
    ( "integration.split_driver",
      [
        Alcotest.test_case "grant handshake" `Quick test_split_driver_grants;
        Alcotest.test_case "completion order" `Quick
          test_split_driver_completion_order;
      ] );
  ]
