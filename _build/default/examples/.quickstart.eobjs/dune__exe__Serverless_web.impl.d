examples/serverless_web.ml: List Printf Xc_apps Xc_platforms Xc_sim
