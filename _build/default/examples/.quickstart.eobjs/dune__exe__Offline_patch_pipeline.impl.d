examples/offline_patch_pipeline.ml: Builder Filename Format Image Machine Printf Sys Xc_abom Xc_isa Xelf
