examples/quickstart.mli:
