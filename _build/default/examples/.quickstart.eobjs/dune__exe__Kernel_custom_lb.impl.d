examples/kernel_custom_lb.ml: List Printf Xc_apps Xc_net Xc_sim
