examples/quickstart.ml: Format List Xc_hypervisor Xc_isa Xc_platforms Xcontainers
