examples/serverless_web.mli:
