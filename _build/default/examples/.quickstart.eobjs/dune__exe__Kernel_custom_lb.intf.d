examples/kernel_custom_lb.mli:
