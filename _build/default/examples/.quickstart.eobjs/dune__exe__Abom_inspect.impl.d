examples/abom_inspect.ml: Builder Format Image List Machine Xc_abom Xc_isa
