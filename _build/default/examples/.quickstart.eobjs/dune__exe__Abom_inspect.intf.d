examples/abom_inspect.mli:
