examples/scalability_sweep.ml: List Printf Xc_apps Xc_platforms Xc_sim
