examples/offline_patch_pipeline.mli:
