examples/scalability_sweep.mli:
