(* Kernel customization case study (Section 5.7): because an X-Container
   brings its own kernel, it can load the IPVS modules and do kernel-level
   load balancing — impossible for a Docker container without root on the
   host.  Reproduces the Figure 9 comparison and explains each setup.

   Run with:  dune exec examples/kernel_custom_lb.exe *)

let () =
  print_endline "Three single-worker NGINX servers behind one load balancer";
  print_endline "(all containers on one physical machine)";
  print_newline ();

  let t =
    Xc_sim.Table.create
      [
        ("setup", Xc_sim.Table.Left);
        ("req/s", Xc_sim.Table.Right);
        ("LB cost/req", Xc_sim.Table.Right);
        ("bottleneck", Xc_sim.Table.Left);
        ("kernel modules?", Xc_sim.Table.Left);
      ]
  in
  List.iter
    (fun setup ->
      let r = Xc_apps.Lb_experiment.run setup in
      let mode =
        match setup with
        | Xc_apps.Lb_experiment.Docker_haproxy | Xc_apps.Lb_experiment.Xcontainer_haproxy
          ->
            Xc_net.Load_balancer.Haproxy
        | Xc_apps.Lb_experiment.Xcontainer_ipvs_nat -> Xc_net.Load_balancer.Ipvs_nat
        | Xc_apps.Lb_experiment.Xcontainer_ipvs_dr ->
            Xc_net.Load_balancer.Ipvs_direct_routing
      in
      Xc_sim.Table.add_row t
        [
          Xc_apps.Lb_experiment.setup_name setup;
          Xc_sim.Table.fmt_si r.throughput_rps;
          Printf.sprintf "%.1fus" (r.lb_service_ns /. 1e3);
          (match r.bottleneck with
          | `Balancer -> "load balancer"
          | `Backends -> "NGINX servers");
          (if Xc_net.Load_balancer.requires_kernel_modules mode then
             "yes (X-Containers only)"
           else "no");
        ])
    Xc_apps.Lb_experiment.all;
  Xc_sim.Table.print t;
  print_newline ();

  print_endline "Reading the table:";
  print_endline
    "- HAProxy is user-space: every request costs ~14 syscalls on the balancer.";
  print_endline
    "  On Docker each syscall pays the full (Meltdown-patched) trap; on an";
  print_endline
    "  X-Container ABOM turned them into function calls - about twice the";
  print_endline "  throughput from the same binary.";
  print_endline
    "- IPVS NAT moves balancing into the kernel (no syscalls), but still";
  print_endline
    "  carries responses back through the balancer: +12-18% more.";
  print_endline
    "- IPVS direct routing forwards requests only; responses go straight to";
  print_endline
    "  the clients.  The balancer stops being the bottleneck and the three";
  print_endline "  NGINX servers set the pace: ~2.5-3x over NAT."
