(* Quickstart: boot an X-Container from a Docker image, run its program
   under the X-Kernel (ABOM patching syscall sites on first use), and
   inspect what happened.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A host: the X-Kernel as exokernel, 4 physical cores, 16 GB. *)
  let xkernel = Xc_hypervisor.Xkernel.create ~pcpus:4 ~memory_mb:16384 () in

  (* A single-concerned container: one NGINX, 1 vCPU, 128 MB. *)
  let spec = Xcontainers.Spec.make ~name:"web" ~image:"nginx:1.13" () in
  Format.printf "booting %a@." Xcontainers.Spec.pp spec;

  match Xcontainers.Xcontainer.boot ~xkernel spec with
  | Error e ->
      prerr_endline ("boot failed: " ^ e);
      exit 1
  | Ok xc ->
      Format.printf "boot time: %a@." Xcontainers.Boot.pp
        (Xcontainers.Xcontainer.boot_time xc);
      Format.printf "processes spawned by the bootloader: %d@."
        (List.length (Xcontainers.Xcontainer.processes xc));

      (* Serve 1000 "requests": each run of the program issues the
         image's syscalls.  The first pass traps into the X-Kernel and
         ABOM rewrites each site; every later pass uses function calls. *)
      (match Xcontainers.Xcontainer.exec_program ~repeat:1000 xc with
      | Ok Xc_isa.Machine.Halted -> ()
      | Ok _ -> prerr_endline "program did not halt cleanly"
      | Error e -> prerr_endline e);

      let stats = Xcontainers.Xcontainer.syscall_stats xc in
      Format.printf
        "syscalls: %d total, %d trapped, %d as function calls (%.2f%% converted)@."
        stats.total stats.via_trap stats.via_function_call
        (100. *. stats.reduction);

      (* What a request would cost on this platform vs native Docker. *)
      let xc_platform =
        Xc_platforms.Platform.create
          (Xc_platforms.Config.make Xc_platforms.Config.X_container)
      in
      let docker_platform =
        Xc_platforms.Platform.create
          (Xc_platforms.Config.make Xc_platforms.Config.Docker)
      in
      (match
         ( Xcontainers.Xcontainer.service_time_ns xc ~platform:xc_platform,
           Xcontainers.Xcontainer.service_time_ns xc ~platform:docker_platform )
       with
      | Some on_xc, Some on_docker ->
          Format.printf
            "per-request service time: %.1fus on X-Container vs %.1fus on Docker (%.2fx)@."
            (on_xc /. 1e3) (on_docker /. 1e3) (on_docker /. on_xc)
      | _ -> ());

      Xcontainers.Xcontainer.shutdown ~xkernel xc;
      Format.printf "shut down; host free memory: %d MB@."
        (Xc_hypervisor.Xkernel.free_memory_mb xkernel)
