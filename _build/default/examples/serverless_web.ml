(* Serverless front-end scenario (the Section 5.5 motivation): a
   stateless NGINX driven by a closed-loop client, compared across the
   LibOS platforms, plus a full closed-loop simulation on X-Containers
   with latency percentiles.

   Run with:  dune exec examples/serverless_web.exe *)

module Config = Xc_platforms.Config
module Platform = Xc_platforms.Platform
module Closed_loop = Xc_platforms.Closed_loop

let () =
  print_endline "Stateless web serving across LibOS platforms";
  print_endline "(one NGINX worker, one dedicated core, wrk-style clients)";
  print_newline ();

  (* Deterministic single-core rates, as in Figure 6a. *)
  let t =
    Xc_sim.Table.create
      [ ("platform", Xc_sim.Table.Left); ("req/s", Xc_sim.Table.Right);
        ("note", Xc_sim.Table.Left) ]
  in
  List.iter
    (fun (c, note) ->
      Xc_sim.Table.add_row t
        [
          Xc_apps.Serverless.contender_name c;
          Xc_sim.Table.fmt_si (Xc_apps.Serverless.nginx_one_worker c);
          note;
        ])
    [
      (Xc_apps.Serverless.G, "libOS on a full Linux host");
      (Xc_apps.Serverless.U, "rumprun unikernel, single process");
      (Xc_apps.Serverless.X, "X-Container");
    ];
  Xc_sim.Table.print t;
  print_newline ();

  (* A real closed-loop simulation on X-Containers: watch latency grow
     as concurrency pushes the worker to saturation. *)
  print_endline "X-Container closed-loop (1 worker): concurrency sweep";
  let platform = Platform.create (Config.make ~cloud:Config.Local_cluster Config.X_container) in
  let t =
    Xc_sim.Table.create
      [
        ("connections", Xc_sim.Table.Right);
        ("req/s", Xc_sim.Table.Right);
        ("p50 latency", Xc_sim.Table.Right);
        ("p99 latency", Xc_sim.Table.Right);
      ]
  in
  List.iter
    (fun conns ->
      let server = Xc_apps.Nginx.server ~workers:1 ~cores:1 platform in
      let result =
        Closed_loop.run { Closed_loop.default_config with connections = conns } server
      in
      Xc_sim.Table.add_row t
        [
          string_of_int conns;
          Xc_sim.Table.fmt_si result.throughput_rps;
          Printf.sprintf "%.0fus" (result.p50_ns /. 1e3);
          Printf.sprintf "%.0fus" (result.p99_ns /. 1e3);
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Xc_sim.Table.print t;
  print_newline ();

  (* Why X-Containers get there: the per-request bill. *)
  let recipe = Xc_apps.Nginx.static_request_wrk in
  print_endline "per-request service time by platform (same NGINX recipe):";
  List.iter
    (fun runtime ->
      let p = Platform.create (Config.make ~cloud:Config.Local_cluster ~meltdown_patched:false runtime) in
      Printf.printf "  %-16s %8.1f us\n"
        (Config.runtime_name runtime)
        (Xc_apps.Recipe.service_ns p recipe /. 1e3))
    [ Config.Docker; Config.Xen_container; Config.X_container; Config.Gvisor ]
