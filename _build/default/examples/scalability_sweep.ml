(* Scalability, two ways: the analytic Figure 8 model and the
   event-driven two-level scheduler simulation, side by side — the
   hierarchical-scheduling claim shown both as arithmetic and as
   emergent behaviour.

   Run with:  dune exec examples/scalability_sweep.exe *)

module CS = Xc_platforms.Cluster_sim

let () =
  print_endline "Figure 8 two ways: analytic model vs event-driven simulation";
  print_endline "(NGINX+PHP-FPM containers, 16 cores, 5 connections each)";
  print_newline ();
  let t =
    Xc_sim.Table.create
      [
        ("containers", Xc_sim.Table.Right);
        ("analytic Docker", Xc_sim.Table.Right);
        ("analytic XC", Xc_sim.Table.Right);
        ("simulated flat", Xc_sim.Table.Right);
        ("simulated hier", Xc_sim.Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let analytic runtime =
        (Xc_apps.Scalability.run runtime ~containers:n).throughput_rps
      in
      let simulated mode = (CS.run (CS.default_config mode ~containers:n)).throughput_rps in
      Xc_sim.Table.add_row t
        [
          string_of_int n;
          Xc_sim.Table.fmt_si (analytic Xc_platforms.Config.Docker);
          Xc_sim.Table.fmt_si (analytic Xc_platforms.Config.X_container);
          Xc_sim.Table.fmt_si (simulated CS.Flat);
          Xc_sim.Table.fmt_si (simulated CS.Hierarchical);
        ])
    [ 16; 64; 150; 400 ];
  Xc_sim.Table.print t;
  print_newline ();

  (* Where the time goes at N = 400. *)
  let flat = CS.run (CS.default_config CS.Flat ~containers:400) in
  let hier = CS.run (CS.default_config CS.Hierarchical ~containers:400) in
  Printf.printf "at 400 containers, per 0.3s of simulated time:\n";
  Printf.printf
    "  flat:          %5d container switches, %5d process switches, %.0fms burnt switching\n"
    flat.container_switches flat.process_switches (flat.switch_overhead_ns /. 1e6);
  Printf.printf
    "  hierarchical:  %5d container switches, %5d process switches, %.0fms burnt switching\n"
    hier.container_switches hier.process_switches (hier.switch_overhead_ns /. 1e6);
  Printf.printf
    "  the hierarchy batches: a core drains one container's processes before\n";
  Printf.printf
    "  moving on, so the expensive cross-container switches drop ~3x.\n"
