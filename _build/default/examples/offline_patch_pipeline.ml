(* The offline tool's full pipeline, as an operator would drive it:
   profile a running binary, find the hot sites ABOM could not convert
   online, take the binary offline, patch it at rest (XELF file), and
   measure again.

   Run with:  dune exec examples/offline_patch_pipeline.exe *)

open Xc_isa

let run_workload ~patcher ~image ~entry ~iterations =
  let config = Xc_abom.Patcher.machine_config patcher () in
  let m = Machine.create ~config image ~entry in
  for _ = 1 to iterations do
    Machine.reset m ~entry;
    match Machine.run ~fuel:100_000 m with
    | Machine.Halted -> ()
    | Fault msg -> failwith msg
    | Fuel_exhausted -> failwith "fuel"
  done;
  Xc_abom.Profile.of_machine m

let () =
  (* A MySQL-like binary: glibc wrappers plus two hot cancellable
     libpthread sites the online patcher cannot touch. *)
  let prog =
    Builder.build
      [
        (Builder.Glibc_small, 232) (* epoll_wait *);
        (Builder.Cancellable, 0) (* read via libpthread *);
        (Builder.Cancellable, 1) (* write via libpthread *);
        (Builder.Glibc_wide, 3) (* close *);
      ]
  in
  let path = Filename.temp_file "mysqld" ".xelf" in
  Xelf.save prog.image ~path;
  Printf.printf "shipped binary to %s (%d bytes)\n\n" path (Image.size prog.image);

  (* Phase 1: run in production under the X-Kernel; ABOM converts what
     it can, the profiler shows what is left. *)
  let table = Xc_abom.Entry_table.create () in
  let patcher = Xc_abom.Patcher.create table in
  let image =
    match Xelf.load ~path with Ok i -> i | Error e -> failwith e
  in
  let profile = run_workload ~patcher ~image ~entry:prog.entry ~iterations:500 in
  print_endline "=== production profile (online ABOM only) ===";
  Format.printf "%a@." Xc_abom.Profile.pp profile;

  (* Phase 2: the profiler named the offenders; patch the binary at
     rest with the offline tool and redeploy. *)
  print_endline "=== offline patching ===";
  let report = Xc_abom.Offline_tool.patch_image ~aggressive:true patcher image in
  Format.printf "%a@.@." Xc_abom.Offline_tool.pp_report report;
  Xelf.save image ~path;

  (* Phase 3: the redeployed binary. *)
  let image' = match Xelf.load ~path with Ok i -> i | Error e -> failwith e in
  let profile' = run_workload ~patcher ~image:image' ~entry:prog.entry ~iterations:500 in
  print_endline "=== after redeploy ===";
  Format.printf "%a@." Xc_abom.Profile.pp profile';
  Printf.printf "reduction: %.1f%% -> %.1f%%  (Table 1's MySQL row, live)\n"
    (100. *. Xc_abom.Profile.reduction profile)
    (100. *. Xc_abom.Profile.reduction profile');
  Sys.remove path
