(* ABOM under the microscope: build a small binary with each wrapper
   style, disassemble it, let the patcher rewrite it on the first trap,
   and disassemble it again — Figure 2 of the paper, live.

   Run with:  dune exec examples/abom_inspect.exe *)

open Xc_isa

let show_site title (prog : Builder.program) (site : Builder.site) =
  Format.printf "--- %s (%s, syscall %d) ---@." title
    (Builder.style_to_string site.style)
    site.sysno;
  let len =
    match site.style with
    | Builder.Glibc_wide | Builder.Cancellable -> 10
    | Builder.Exotic -> 11
    | Builder.Glibc_small | Builder.Go_stack -> 8
  in
  print_endline (Image.disassemble_range prog.image ~off:site.wrapper_off ~len);
  print_newline ()

let () =
  let prog =
    Builder.build
      [
        (Builder.Glibc_small, 0) (* read: the 7-byte case 1 *);
        (Builder.Glibc_wide, 15) (* rt_sigreturn: the 9-byte two-phase *);
        (Builder.Go_stack, 39) (* getpid via the Go pattern: case 2 *);
        (Builder.Cancellable, 1) (* write via libpthread: unpatchable online *);
      ]
  in
  print_endline "================ BEFORE PATCHING ================";
  List.iter (fun site -> show_site "original" prog site) prog.sites;

  (* Run the program once under the X-Kernel: each syscall traps and
     ABOM inspects and (where possible) rewrites the site. *)
  let patcher = Xc_abom.Patcher.create (Xc_abom.Entry_table.create ()) in
  let config = Xc_abom.Patcher.machine_config patcher () in
  let machine = Machine.create ~config prog.image ~entry:prog.entry in
  (match Machine.run machine with
  | Machine.Halted -> ()
  | Fault msg -> failwith msg
  | Fuel_exhausted -> failwith "fuel");

  print_endline "================ AFTER ONE EXECUTION ================";
  List.iter (fun site -> show_site "patched" prog site) prog.sites;

  Format.printf "patch outcomes:@.";
  List.iter
    (fun (outcome, n) ->
      Format.printf "  %-20s %d@." (Xc_abom.Patcher.outcome_to_string outcome) n)
    (Xc_abom.Patcher.outcomes patcher);
  Format.printf "atomic cmpxchg stores used: %d@." (Xc_abom.Patcher.cmpxchg_ops patcher);

  (* Run again: everything patchable now goes through function calls. *)
  Machine.clear_events machine;
  Machine.reset machine ~entry:prog.entry;
  ignore (Machine.run machine);
  let fast, trap =
    List.partition (fun (e : Machine.event) -> e.kind = `Fast) (Machine.events machine)
  in
  Format.printf "second run: %d function-call syscalls, %d trapped@."
    (List.length fast) (List.length trap);

  (* The offline tool can still rescue the cancellable site. *)
  let report = Xc_abom.Offline_tool.patch_image ~aggressive:true patcher prog.image in
  Format.printf "offline tool: %a@." Xc_abom.Offline_tool.pp_report report;
  Machine.clear_events machine;
  Machine.reset machine ~entry:prog.entry;
  ignore (Machine.run machine);
  let fast, trap =
    List.partition (fun (e : Machine.event) -> e.kind = `Fast) (Machine.events machine)
  in
  Format.printf "after offline patch: %d function-call syscalls, %d trapped@."
    (List.length fast) (List.length trap)
